// Benchmarks regenerating every table and figure of the paper's
// evaluation section (see EXPERIMENTS.md for the measured numbers and
// the paper-vs-replica comparison), plus ablation benches for the
// design choices called out in DESIGN.md and micro-benchmarks of the
// hot substrates.
//
// The table benches do a full experiment per iteration; run them with
// the default -benchtime (they self-calibrate to one iteration) and
// read the custom metrics: products/op or cost/op is solution quality,
// optimal/op how many instances were certified.
package ucp

import (
	"math/rand"
	"runtime"
	"testing"

	"ucp/internal/bdd"
	"ucp/internal/benchmarks"
	"ucp/internal/bnb"
	"ucp/internal/harness"
	"ucp/internal/lagrangian"
	"ucp/internal/matrix"
	"ucp/internal/primes"
	"ucp/internal/scg"
	"ucp/internal/solvecache"
	"ucp/internal/zdd"
)

// BenchmarkFigure1Bounds regenerates Figure 1: the bound chain
// LB_MIS < LB_DA < LB_LR on the witness matrix.
func BenchmarkFigure1Bounds(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := harness.Figure1()
		if r.MIS != 1 || r.DualAscent != 2 || r.Optimum != 3 {
			b.Fatalf("bound chain broken: %+v", r)
		}
	}
}

// BenchmarkEasyCyclic regenerates the first experiment of §5: the 49
// easy cyclic instances, reporting the total-cost metrics the paper
// quotes (total 5225 vs bound 5213, 0.22% gap, on the originals).
func BenchmarkEasyCyclic(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := harness.EasyCyclic()
		b.ReportMetric(float64(s.TotalSCG), "totalcost/op")
		b.ReportMetric(float64(s.TotalSCG-s.TotalLB), "gap/op")
		b.ReportMetric(float64(s.SolvedOptimal), "optimal/op")
		b.ReportMetric(float64(s.TotalEsp-s.TotalSCG), "esp-excess/op")
		b.ReportMetric(float64(s.TotalEspStrong-s.TotalSCG), "espstrong-excess/op")
	}
}

func benchHeuristicTable(b *testing.B, rows func() []harness.HeuristicRow) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl := rows()
		scgTotal, espTotal, strongTotal, optimal := 0, 0, 0, 0
		for _, r := range tbl {
			scgTotal += r.SCGSol
			espTotal += r.EspSol
			strongTotal += r.EspStrongSol
			if r.SCGOptimal {
				optimal++
			}
		}
		b.ReportMetric(float64(scgTotal), "scg-products/op")
		b.ReportMetric(float64(espTotal), "esp-products/op")
		b.ReportMetric(float64(strongTotal), "espstrong-products/op")
		b.ReportMetric(float64(optimal), "optimal/op")
	}
}

// BenchmarkTable1 regenerates Table 1: ZDD_SCG vs Espresso
// normal/strong on the seven difficult cyclic instances.
func BenchmarkTable1(b *testing.B) { benchHeuristicTable(b, harness.Table1) }

// BenchmarkTable2 regenerates Table 2: the sixteen challenging
// instances.
func BenchmarkTable2(b *testing.B) { benchHeuristicTable(b, harness.Table2) }

func benchExactTable(b *testing.B, rows func(int, int64) []harness.ExactRow) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl := rows(2, 50_000)
		scgTotal, exTotal := 0, 0
		var nodes int64
		certified := 0
		for _, r := range tbl {
			scgTotal += r.SCGSol
			exTotal += r.ExactSol
			nodes += r.ExactNodes
			if r.ExactOptimal {
				certified++
			}
		}
		b.ReportMetric(float64(scgTotal), "scg-cost/op")
		b.ReportMetric(float64(exTotal), "exact-cost/op")
		b.ReportMetric(float64(nodes), "exact-nodes/op")
		b.ReportMetric(float64(certified), "exact-certified/op")
	}
}

// BenchmarkTable3 regenerates Table 3: heuristic vs exact on the
// difficult cyclic covering problems (exact capped at 50k nodes; the
// paper let Scherzo run for hours).
func BenchmarkTable3(b *testing.B) { benchExactTable(b, harness.Table3) }

// BenchmarkTable4 regenerates Table 4: the challenging subset.
func BenchmarkTable4(b *testing.B) { benchExactTable(b, harness.Table4) }

// BenchmarkBoundsStudy regenerates the Proposition 1 comparison on 20
// random covering instances.
func BenchmarkBoundsStudy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := harness.BoundsStudy(20)
		strict := 0
		for _, r := range rows {
			if r.DualAscent > float64(r.MIS) && r.LinearRel > r.DualAscent {
				strict++
			}
		}
		b.ReportMetric(float64(strict), "strict-chains/op")
	}
}

// ----- ablation benches (DESIGN.md §5) -----

// BenchmarkAblationAlpha sweeps the fixing weight α of σ = c̃ − α·μ.
func BenchmarkAblationAlpha(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, r := range harness.AblationAlpha() {
			b.ReportMetric(float64(r.Total), r.Label+"-cost/op")
		}
	}
}

// BenchmarkAblationGamma compares the four greedy rating functions.
func BenchmarkAblationGamma(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, g := range harness.AblationGamma() {
			b.ReportMetric(float64(g.Total), g.Label+"/op")
		}
	}
}

// BenchmarkAblationPenalties measures the penalty and promising-column
// fixing machinery.
func BenchmarkAblationPenalties(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, r := range harness.AblationPenalties() {
			b.ReportMetric(float64(r.Total), r.Label+"-cost/op")
		}
	}
}

// BenchmarkAblationRestarts sweeps the stochastic restart count.
func BenchmarkAblationRestarts(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, r := range harness.AblationRestarts() {
			b.ReportMetric(float64(r.Total), r.Label+"-cost/op")
		}
	}
}

// BenchmarkAblationWarmStart contrasts dual-ascent vs zero multiplier
// initialisation under a tight iteration budget.
func BenchmarkAblationWarmStart(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := harness.AblationWarmStart()
		b.ReportMetric(rows[0].TotalLB, "warm-LB/op")
		b.ReportMetric(rows[1].TotalLB, "cold-LB/op")
	}
}

// BenchmarkAblationSolverWarmStart compares inheriting multipliers
// across fixing phases against cold dual-ascent restarts.
func BenchmarkAblationSolverWarmStart(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, r := range harness.AblationSolverWarmStart() {
			b.ReportMetric(r.Time.Seconds(), r.Label+"-sec/op")
			b.ReportMetric(float64(r.Total), r.Label+"-cost/op")
		}
	}
}

// BenchmarkAblationImplicit compares ZDD-implicit against purely
// explicit reductions inside ZDD_SCG.
func BenchmarkAblationImplicit(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, r := range harness.AblationImplicit() {
			b.ReportMetric(r.Time.Seconds(), r.Label+"-sec/op")
		}
	}
}

// ----- micro-benchmarks of the substrates -----

// BenchmarkZDDReductions measures the implicit reduction of a 300x120
// cyclic covering matrix to its core.
func BenchmarkZDDReductions(b *testing.B) {
	b.ReportAllocs()
	p := benchmarks.CyclicCovering(9, 300, 120, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ir := scg.ImplicitReduce(p, 1, 1)
		if ir.Infeasible {
			b.Fatal("infeasible")
		}
	}
}

// BenchmarkReduceFixpoint measures the explicit reduction engine on a
// wide sparse instance (9000 active columns keeps it off the dense
// path): a 3000-row cyclic covering plus 1000 superset rows, so the
// fixpoint does real row-dominance work on top of the quadratic
// no-kill scans.  The dominance passes shard across GOMAXPROCS
// workers — run with -cpu 1,2,4,8 to observe the scaling; the
// reduction is bit-identical across the settings by contract.
func BenchmarkReduceFixpoint(b *testing.B) {
	b.ReportAllocs()
	base := benchmarks.CyclicCovering(21, 3000, 9000, 4)
	rows := append([][]int(nil), base.Rows...)
	for i := 0; i < 1000; i++ {
		r := append([]int(nil), base.Rows[(i*7)%len(base.Rows)]...)
		r = append(r, (r[len(r)-1]+13)%base.NCol)
		rows = append(rows, r)
	}
	p, err := matrix.New(rows, base.NCol, base.Cost)
	if err != nil {
		b.Fatal(err)
	}
	workers := runtime.GOMAXPROCS(0)
	var core int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		red := matrix.ReduceBudgetWorkers(p, nil, workers)
		if red.Infeasible {
			b.Fatal("infeasible")
		}
		if core != 0 && core != len(red.Core.Rows) {
			b.Fatalf("nondeterministic reduction: %d then %d core rows", core, len(red.Core.Rows))
		}
		core = len(red.Core.Rows)
	}
	b.ReportMetric(float64(core), "corerows/op")
}

// BenchmarkZDDGC measures the mark-sweep collector: load the covering
// family, run one Minimal pass (stranding the intermediate results),
// then Collect back to the live family.
func BenchmarkZDDGC(b *testing.B) {
	b.ReportAllocs()
	p := benchmarks.CyclicCovering(9, 300, 120, 3)
	var freed int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := zdd.New()
		f := zdd.Empty
		m.AddRoot(&f)
		for _, r := range p.Rows {
			f = m.Union(f, mustSet(m, r))
		}
		f = m.Minimal(f)
		freed = m.Collect()
		if freed == 0 {
			b.Fatal("nothing to collect")
		}
		if m.LiveNodeCount() != m.NodeCount() {
			b.Fatal("sweep left dead nodes")
		}
	}
	b.ReportMetric(float64(freed), "freed/op")
}

// BenchmarkZDDChainNodes measures the chain representation's
// nodes-per-instance win on a paper covering family: load the max1024
// covering rows, reduce to minimal rows, collect, and profile the
// surviving family.  chainlive/op is what the NodeCap budget meters;
// plain/op is what a chain-free ZDD would store for the same family;
// ratio/op is the compression factor (the implicit-ceiling headroom).
func BenchmarkZDDChainNodes(b *testing.B) {
	b.ReportAllocs()
	var inst *benchmarks.Instance
	for _, in := range benchmarks.DifficultCyclic() {
		if in.Name == "max1024" {
			in := in
			inst = &in
			break
		}
	}
	f := inst.PLA()
	prs, _ := primes.GenerateAutoBudget(f.F, f.D, nil)
	p, _, err := primes.BuildCovering(f.F, f.D, prs, primes.UnitCost)
	if err != nil {
		b.Fatal(err)
	}
	var live, plain int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := zdd.New()
		fam := zdd.Empty
		m.AddRoot(&fam)
		for _, r := range p.Rows {
			fam = m.Union(fam, mustSet(m, r))
		}
		fam = m.Minimal(fam)
		m.Collect()
		live, plain = m.LiveProfile()
		if live == 0 || plain < 2*live {
			b.Fatalf("chain compression below 2x: %d live vs %d plain-equivalent", live, plain)
		}
	}
	b.ReportMetric(float64(live), "chainlive/op")
	b.ReportMetric(float64(plain), "plain/op")
	b.ReportMetric(float64(plain)/float64(live), "ratio/op")
}

// BenchmarkZDDUnion measures raw family construction: inserting 2000
// random triples into one ZDD.
func BenchmarkZDDUnion(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(1))
	sets := make([][]int, 2000)
	for i := range sets {
		sets[i] = []int{rng.Intn(200), rng.Intn(200), rng.Intn(200)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := zdd.New()
		f := zdd.Empty
		for _, s := range sets {
			f = m.Union(f, mustSet(m, s))
		}
		if m.Count(f) == 0 {
			b.Fatal("empty family")
		}
	}
}

// BenchmarkSubgradient measures one full subgradient ascent phase on a
// 200x100 cyclic core.
func BenchmarkSubgradient(b *testing.B) {
	b.ReportAllocs()
	p := benchmarks.CyclicCovering(11, 200, 100, 3)
	q, _ := p.Compact()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := lagrangian.Subgradient(q, lagrangian.Params{}, nil, 0)
		if res.Best == nil {
			b.Fatal("no solution")
		}
	}
}

// BenchmarkSCGCore measures ZDD_SCG end to end on one mid-size cyclic
// covering matrix.
func BenchmarkSCGCore(b *testing.B) {
	b.ReportAllocs()
	p := benchmarks.CyclicCovering(13, 250, 120, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := scg.Solve(p, scg.Options{Seed: int64(i)})
		if res.Solution == nil {
			b.Fatal("no solution")
		}
	}
}

// BenchmarkSCGPortfolio measures an 8-restart ZDD_SCG solve through
// the worker-pool portfolio.  Run with -cpu 1,2,4,8 to observe the
// restart-level scaling; the solution and Stats are bit-identical
// across the settings by the determinism contract (DESIGN.md).
func BenchmarkSCGPortfolio(b *testing.B) {
	b.ReportAllocs()
	p := benchmarks.CyclicCovering(13, 250, 120, 3)
	b.ResetTimer()
	var cost int
	for i := 0; i < b.N; i++ {
		res := scg.Solve(p, scg.Options{Seed: 5, NumIter: 8})
		if res.Solution == nil {
			b.Fatal("no solution")
		}
		if cost != 0 && res.Cost != cost {
			b.Fatalf("nondeterministic portfolio: cost %d then %d", cost, res.Cost)
		}
		cost = res.Cost
	}
	b.ReportMetric(float64(cost), "cost/op")
}

// BenchmarkSolveCached measures the cross-solve cache against repeated
// resubmission of the same covering problem: the uncached sub-bench
// pays the full ZDD_SCG solve every iteration, the cached one pays it
// once and then only the canonical fingerprint per hit.  The ns/op
// ratio between the two is the memoization speedup (the acceptance bar
// is ≥5×).
func BenchmarkSolveCached(b *testing.B) {
	p := benchmarks.CyclicCovering(13, 250, 120, 3)
	opt := scg.Options{Seed: 5, NumIter: 2}

	b.Run("uncached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if res := scg.Solve(p, opt); res.Solution == nil {
				b.Fatal("no solution")
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		b.ReportAllocs()
		copt := opt
		copt.Cache = solvecache.New(64, 0)
		want := scg.Solve(p, copt) // warm the entry outside the timer
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res := scg.Solve(p, copt)
			if res.Cost != want.Cost {
				b.Fatalf("cache changed the answer: %d != %d", res.Cost, want.Cost)
			}
		}
		b.StopTimer()
		st := copt.Cache.Stats()
		if st.Hits < int64(b.N) {
			b.Fatalf("only %d hits for %d iterations", st.Hits, b.N)
		}
	})
}

// deltaRow1 builds the single-row edit: one near-duplicate (superset)
// of an existing row, the shape an iterated minimisation loop submits.
func deltaRow1(p *matrix.Problem) *Delta {
	src := p.Rows[len(p.Rows)/2]
	extra := 0
	for _, j := range src {
		if j == extra {
			extra++
		}
	}
	row := append(append([]int(nil), src...), extra%p.NCol)
	d, err := p.AddRows([][]int{row})
	if err != nil {
		panic(err)
	}
	return d
}

// deltaCol1 builds the single-column edit: one fresh column covering a
// handful of spread-out rows.
func deltaCol1(p *matrix.Problem) *Delta {
	cover := make([]int, 0, 8)
	for i := 0; i < len(p.Rows); i += 1 + len(p.Rows)/8 {
		cover = append(cover, i)
	}
	d, err := p.AddCols([]int{p.Cost[0] + 1}, [][]int{cover})
	if err != nil {
		panic(err)
	}
	return d
}

// deltaBatch5 builds the 5% batch edit: near-duplicate rows appended
// for one row in twenty.
func deltaBatch5(p *matrix.Problem) *Delta {
	var rows [][]int
	for i := 0; i < len(p.Rows); i += 20 {
		src := p.Rows[i]
		rows = append(rows, append(append([]int(nil), src...), (src[0]+i+1)%p.NCol))
	}
	d, err := p.AddRows(rows)
	if err != nil {
		panic(err)
	}
	return d
}

// BenchmarkDeltaResolve measures the incremental re-solve path against
// a from-scratch kept solve of the same edited instance: cold is the
// baseline SolveSCGKeep of the single-row child, row1/col1/batch5pct
// are Solver.Resolve with the parent state in hand.  The acceptance
// bar is row1 ≤ 25% of cold ns/op (target ~10%); results are
// bit-identical to cold by the replay contract, checked every
// iteration.  Instances: a scpd1-shaped random covering (400×4000,
// 5% density, the OR-Library hard-set shape) and the max1024 covering
// from the paper's difficult cyclic set.
func BenchmarkDeltaResolve(b *testing.B) {
	var max1024 benchmarks.Instance
	for _, in := range benchmarks.DifficultCyclic() {
		if in.Name == "max1024" {
			max1024 = in
		}
	}
	instances := []struct {
		name string
		p    *matrix.Problem
	}{
		{"scpd-like", benchmarks.RandomCovering(41, 400, 4000, 0.05, 100)},
		{"max1024", harness.Covering(max1024)},
	}
	opt := SCGOptions{Seed: 7, NumIter: 1}
	for _, inst := range instances {
		b.Run(inst.name, func(b *testing.B) {
			p := inst.p
			edits := []struct {
				name string
				d    *Delta
			}{
				{"row1", deltaRow1(p)},
				{"col1", deltaCol1(p)},
				{"batch5pct", deltaBatch5(p)},
			}
			b.Run("cold", func(b *testing.B) {
				b.ReportAllocs()
				s := NewSolver(SolverOptions{ArenaSize: -1})
				child := edits[0].d.Child
				for i := 0; i < b.N; i++ {
					if res, _ := s.SolveSCGKeep(child, opt); res.Solution == nil {
						b.Fatal("no solution")
					}
				}
			})
			for _, e := range edits {
				b.Run(e.name, func(b *testing.B) {
					b.ReportAllocs()
					s := NewSolver(SolverOptions{ArenaSize: -1})
					_, keep := s.SolveSCGKeep(p, opt)
					want, _ := s.SolveSCGKeep(e.d.Child, opt)
					if want.Solution == nil {
						b.Fatal("no solution")
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						res, _ := s.Resolve(e.d, keep, opt, ResolveOptions{})
						if res.Cost != want.Cost || res.Stats.Runs != want.Stats.Runs {
							b.Fatalf("resolve diverged from cold: cost %d vs %d", res.Cost, want.Cost)
						}
					}
					b.StopTimer()
					rs := s.ResolveStats()
					b.ReportMetric(float64(rs.CompsReused)/float64(b.N), "reused/op")
				})
			}
		})
	}
}

// isoBlockCovering builds k label-disjoint copies of one random
// covering block: the branch-and-bound partitions it into k components
// whose sub-cores are isomorphic, so the canonical transposition table
// solves one and reuses the rest.
func isoBlockCovering(seed int64, k, nr, nc, deg int) *matrix.Problem {
	rng := rand.New(rand.NewSource(seed))
	block := make([][]int, nr)
	for i := range block {
		seen := map[int]bool{}
		for len(block[i]) < deg {
			j := rng.Intn(nc)
			if !seen[j] {
				seen[j] = true
				block[i] = append(block[i], j)
			}
		}
	}
	cost := make([]int, k*nc)
	rows := make([][]int, 0, k*nr)
	for c := 0; c < k; c++ {
		for j := 0; j < nc; j++ {
			cost[c*nc+j] = 1 + (j*7+int(seed))%3
		}
		for _, r := range block {
			nr := make([]int, len(r))
			for t, j := range r {
				nr[t] = c*nc + j
			}
			rows = append(rows, nr)
		}
	}
	p, err := matrix.New(rows, k*nc, cost)
	if err != nil {
		panic(err)
	}
	return p
}

// BenchmarkBnBTransposition measures the exact solver with and without
// the transposition table on a 4-block isomorphic instance: nodes/op
// is the search-tree size, and the tt sub-bench should visit
// measurably fewer nodes (the canonical table shares sub-core optima
// across the isomorphic components).
func BenchmarkBnBTransposition(b *testing.B) {
	p := isoBlockCovering(3, 4, 40, 26, 3)
	for _, tc := range []struct {
		name    string
		disable bool
	}{{"tt", false}, {"nott", true}} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var nodes, hits int64
			for i := 0; i < b.N; i++ {
				res := bnb.Solve(p, bnb.Options{DisableTT: tc.disable})
				if res.Solution == nil || !res.Optimal {
					b.Fatal("exact solve failed")
				}
				nodes, hits = res.Nodes, res.TTHits
			}
			b.ReportMetric(float64(nodes), "nodes/op")
			b.ReportMetric(float64(hits), "tthits/op")
		})
	}
}

// BenchmarkPrimesAndCovering measures the Quine–McCluskey front end on
// the t1 replica.
func BenchmarkPrimesAndCovering(b *testing.B) {
	b.ReportAllocs()
	var inst benchmarks.Instance
	for _, in := range benchmarks.DifficultCyclic() {
		if in.Name == "t1" {
			inst = in
		}
	}
	for i := 0; i < b.N; i++ {
		p := harness.Covering(inst)
		if len(p.Rows) == 0 {
			b.Fatal("empty covering")
		}
	}
}

// BenchmarkImplicitEncodingZDD vs ...BDD reproduce the paper's §2
// observation that ZDDs suit the covering structures better than the
// earlier BDD encoding (references [18] vs [22]): the same covering
// matrix is loaded as a ZDD family of rows and, for comparison, each
// instance's ON-set minterms are encoded as a characteristic BDD.
func BenchmarkImplicitEncodingZDD(b *testing.B) {
	b.ReportAllocs()
	p := benchmarks.CyclicCovering(17, 400, 150, 3)
	nodes := 0
	for i := 0; i < b.N; i++ {
		m := zdd.New()
		f := zdd.Empty
		for _, r := range p.Rows {
			f = m.Union(f, mustSet(m, r))
		}
		if m.Count(f) == 0 {
			b.Fatal("empty family")
		}
		nodes = m.NodeCount()
	}
	b.ReportMetric(float64(nodes), "nodes/op")
}

// BenchmarkImplicitEncodingBDD measures the characteristic-function
// encoding of the t1 replica's ON-set minterms.
func BenchmarkImplicitEncodingBDD(b *testing.B) {
	b.ReportAllocs()
	var inst benchmarks.Instance
	for _, in := range benchmarks.DifficultCyclic() {
		if in.Name == "t1" {
			inst = in
		}
	}
	f := inst.PLA()
	nodes := 0
	for i := 0; i < b.N; i++ {
		m := bdd.New()
		g := bdd.FromCover(m, f.F, 0)
		if g == bdd.False {
			b.Fatal("empty function")
		}
		nodes = m.NodeCount()
	}
	b.ReportMetric(float64(nodes), "nodes/op")
}

// mustSet builds the set ZDD for elems; benchmark inputs are always
// valid, so the validation error is fatal.
func mustSet(m *zdd.Manager, elems []int) zdd.Node {
	n, err := m.Set(elems)
	if err != nil {
		panic(err)
	}
	return n
}

// BenchmarkShardedSolve measures the out-of-core component-sharded
// driver against the direct in-memory solve on a 60-component
// round-robin instance (the worst case for the streaming partitioner).
// direct is the unsharded scg.Solve baseline; inram runs the sharded
// driver with a budget holding every component resident (its pure
// streaming/partitioning overhead); spill forces most components
// through the spill file.  All three answers are bit-identical by the
// driver's contract, checked every iteration; spilled/op reports how
// many components the spill variant pushed to disk.
func BenchmarkShardedSolve(b *testing.B) {
	spec := benchmarks.ComponentSpec{
		Seed: 11, Components: 60, RowsPerComp: 200, ColsPerComp: 40, RowDegree: 4, MaxCost: 5,
	}
	p, err := benchmarks.ComponentCovering(spec)
	if err != nil {
		b.Fatal(err)
	}
	opt := SCGOptions{Seed: 5, NumIter: 1}
	want := scg.Solve(p, opt)
	if want.Solution == nil {
		b.Fatal("no solution")
	}

	b.Run("direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if res := scg.Solve(p, opt); res.Cost != want.Cost {
				b.Fatalf("cost %d != %d", res.Cost, want.Cost)
			}
		}
	})
	run := func(name string, memBudget int64) {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			sopt := opt
			sopt.MemBudget = memBudget
			spilled := 0
			for i := 0; i < b.N; i++ {
				res := SolveSCG(p, sopt)
				if res.Cost != want.Cost {
					b.Fatalf("sharded solve changed the answer: %d != %d", res.Cost, want.Cost)
				}
				if res.Stats.ShardComponents != spec.Components {
					b.Fatalf("%d components, want %d", res.Stats.ShardComponents, spec.Components)
				}
				spilled = res.Stats.ShardSpilled
			}
			b.ReportMetric(float64(spilled), "spilled/op")
		})
	}
	run("inram", 1<<30)
	run("spill", 256<<10)
}
