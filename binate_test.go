package ucp

import (
	"bytes"
	"strings"
	"testing"
)

func TestBinateAPI(t *testing.T) {
	// Choose a cover of {0,1} and {2,3}, with 0 and 2 mutually
	// exclusive.
	p, err := NewBinateProblem([][]BinateLit{
		{{Col: 0}, {Col: 1}},
		{{Col: 2}, {Col: 3}},
		{{Col: 0, Neg: true}, {Col: 2, Neg: true}},
	}, 4, []int{1, 3, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	res := SolveBinate(p, BinateOptions{})
	if !res.Feasible || !res.Optimal || res.Cost != 4 {
		t.Fatalf("got %+v", res)
	}
}

func TestBinateFromUnateAgrees(t *testing.T) {
	u, err := NewProblem([][]int{{0, 1}, {1, 2}, {0, 2}}, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	exact := SolveExact(u, ExactOptions{})
	bp, err := BinateFromUnate(u)
	if err != nil {
		t.Fatal(err)
	}
	b := SolveBinate(bp, BinateOptions{})
	if !b.Feasible || b.Cost != exact.Cost {
		t.Fatalf("binate lift cost %d, unate optimum %d", b.Cost, exact.Cost)
	}
}

func TestBinateInfeasibleAPI(t *testing.T) {
	p, err := NewBinateProblem([][]BinateLit{
		{{Col: 0}},
		{{Col: 0, Neg: true}},
	}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := SolveBinate(p, BinateOptions{})
	if res.Feasible || !res.Optimal {
		t.Fatalf("got %+v, want proved infeasible", res)
	}
}

func TestORLibRoundTripAPI(t *testing.T) {
	src := "2 3\n1 2 3\n2\n1 2\n1\n3\n"
	p, err := ReadORLibProblem(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rows) != 2 || p.NCol != 3 {
		t.Fatalf("shape %dx%d", len(p.Rows), p.NCol)
	}
	res := SolveExact(p, ExactOptions{})
	if res.Cost != 1+3 {
		t.Fatalf("optimum %d, want 4", res.Cost)
	}
	var buf bytes.Buffer
	if err := WriteORLibProblem(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := ReadORLibProblem(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rows) != 2 || q.NCol != 3 {
		t.Fatal("round trip changed shape")
	}
}
