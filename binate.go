package ucp

import "ucp/internal/bcp"

// The binate covering problem generalises unate covering: rows become
// clauses of *signed* column literals, so choosing a column can also
// forbid other choices.  The paper's introduction points to BCP as the
// wider model its techniques feed into (state minimisation, technology
// mapping, boolean relations); this library includes an exact
// DPLL-style solver for it.

// BinateLit is a signed column literal of a binate clause; a negated
// literal is satisfied by leaving the column out of the solution.
type BinateLit = bcp.Lit

// BinateProblem is a binate covering instance.
type BinateProblem = bcp.Problem

// BinateOptions controls the binate search.
type BinateOptions = bcp.Options

// BinateResult is a binate solve outcome.  Unlike the unate problem,
// binate instances can be infeasible (check Feasible).
type BinateResult = bcp.Result

// NewBinateProblem builds and normalises a binate covering instance:
// duplicate literals collapse and tautological clauses are dropped.  A
// nil cost vector means unit costs.
func NewBinateProblem(rows [][]BinateLit, ncols int, costs []int) (p *BinateProblem, err error) {
	defer guard(&err)
	return bcp.New(rows, ncols, costs)
}

// SolveBinate finds a minimum-cost satisfying assignment by branch and
// bound with unit propagation.
func SolveBinate(p *BinateProblem, opt BinateOptions) *BinateResult {
	return bcp.Solve(p, opt)
}

// BinateFromUnate lifts a unate covering problem into binate form (all
// literals positive); the optima coincide.  The error reports invalid
// input (negative costs or out-of-range column ids).
func BinateFromUnate(p *Problem) (b *BinateProblem, err error) {
	defer guard(&err)
	return bcp.FromUnate(p)
}
