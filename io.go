package ucp

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ucp/internal/benchmarks"
)

// The covering-matrix text format understood by ReadProblem and
// emitted by WriteProblem:
//
//	# comment
//	p <rows> <cols>
//	c <cost_0> <cost_1> ... <cost_{cols-1}>     (optional; default 1)
//	r <col> <col> ...                           (one line per row)
//
// Column ids are zero-based.

// ReadProblem parses a covering problem in the text format above.
func ReadProblem(r io.Reader) (p *Problem, err error) {
	defer malformed(&err)
	defer guard(&err)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var rows [][]int
	var cost []int
	nr, nc := -1, -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "p":
			if len(fields) != 3 {
				return nil, fmt.Errorf("ucp: line %d: malformed p line", line)
			}
			var err1, err2 error
			nr, err1 = strconv.Atoi(fields[1])
			nc, err2 = strconv.Atoi(fields[2])
			const maxDim = 1 << 24
			if err1 != nil || err2 != nil || nr < 0 || nc < 0 || nr > maxDim || nc > maxDim {
				return nil, fmt.Errorf("ucp: line %d: bad problem size", line)
			}
		case "c":
			if nc < 0 {
				return nil, fmt.Errorf("ucp: line %d: c line before p line", line)
			}
			if len(fields)-1 != nc {
				return nil, fmt.Errorf("ucp: line %d: %d costs for %d columns", line, len(fields)-1, nc)
			}
			cost = make([]int, nc)
			for j, f := range fields[1:] {
				v, err := strconv.Atoi(f)
				if err != nil {
					return nil, fmt.Errorf("ucp: line %d: bad cost %q", line, f)
				}
				cost[j] = v
			}
		case "r":
			if nc < 0 {
				return nil, fmt.Errorf("ucp: line %d: r line before p line", line)
			}
			row := make([]int, 0, len(fields)-1)
			for _, f := range fields[1:] {
				v, err := strconv.Atoi(f)
				if err != nil {
					return nil, fmt.Errorf("ucp: line %d: bad column %q", line, f)
				}
				row = append(row, v)
			}
			rows = append(rows, row)
		default:
			return nil, fmt.Errorf("ucp: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if nc < 0 {
		return nil, fmt.Errorf("ucp: missing p line")
	}
	if nr >= 0 && nr != len(rows) {
		return nil, fmt.Errorf("ucp: p line declares %d rows, found %d", nr, len(rows))
	}
	return NewProblem(rows, nc, cost)
}

// WriteProblem emits p in the text format understood by ReadProblem.
func WriteProblem(w io.Writer, p *Problem) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p %d %d\n", len(p.Rows), p.NCol)
	uniform := true
	for _, c := range p.Cost {
		if c != 1 {
			uniform = false
			break
		}
	}
	if !uniform {
		bw.WriteString("c")
		for _, c := range p.Cost {
			fmt.Fprintf(bw, " %d", c)
		}
		bw.WriteByte('\n')
	}
	for _, r := range p.Rows {
		bw.WriteString("r")
		for _, j := range r {
			fmt.Fprintf(bw, " %d", j)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadORLibProblem parses a set-covering instance in the Beasley
// OR-Library "scp" format (row/column counts, the column costs, then
// each row's degree and 1-based covering columns, all free-format).
func ReadORLibProblem(r io.Reader) (p *Problem, err error) {
	defer malformed(&err)
	defer guard(&err)
	return benchmarks.ReadORLib(r)
}

// WriteORLibProblem emits p in the Beasley OR-Library format.
func WriteORLibProblem(w io.Writer, p *Problem) error { return benchmarks.WriteORLib(w, p) }
