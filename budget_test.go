package ucp

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"ucp/internal/benchmarks"
)

// The budget tests exercise the degradation ladder end to end: every
// public solver must come back quickly once its budget is gone, flag
// the interruption, and still hand over a feasible cover and a valid
// lower bound.

// slowProblem is large enough that an unbounded multi-run SCG solve
// takes far longer than the deadlines used below.
func slowProblem() *Problem {
	return benchmarks.CyclicCovering(7, 400, 200, 3)
}

// cancelledCtx returns a context that is already cancelled.
func cancelledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

func TestSCGCancelledContextStillFeasible(t *testing.T) {
	p := slowProblem()
	res := SolveSCG(p, SCGOptions{NumIter: 50, Budget: Budget{Context: cancelledCtx()}})
	if !res.Interrupted {
		t.Fatal("cancelled solve not flagged Interrupted")
	}
	if res.StopReason != StopCancelled {
		t.Fatalf("StopReason = %v, want %v", res.StopReason, StopCancelled)
	}
	if res.Solution == nil || !p.IsCover(res.Solution) {
		t.Fatal("interrupted solve must still return a feasible cover")
	}
	if res.LB > float64(res.Cost)+1e-9 {
		t.Fatalf("LB %v exceeds the feasible cost %d", res.LB, res.Cost)
	}
	if res.LB < 0 {
		t.Fatalf("LB %v negative on a non-negative-cost problem", res.LB)
	}
}

func TestSCGDeadlineReturnsPromptly(t *testing.T) {
	p := slowProblem()
	const deadline = 50 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	res := SolveSCG(p, SCGOptions{NumIter: 200, Budget: Budget{Context: ctx}})
	elapsed := time.Since(start)
	if !res.Interrupted || res.StopReason != StopDeadline {
		t.Fatalf("Interrupted=%v StopReason=%v, want deadline interruption",
			res.Interrupted, res.StopReason)
	}
	if res.Solution == nil || !p.IsCover(res.Solution) {
		t.Fatal("deadline solve must still return a feasible cover")
	}
	// The checks sit between subgradient phases and fixing steps, so
	// overshoot is one phase, not one solve.  2 s is orders of
	// magnitude below the unbounded 200-run solve and generous enough
	// for a loaded CI machine.
	if elapsed > 2*time.Second {
		t.Fatalf("solve took %v after a %v deadline", elapsed, deadline)
	}
}

func TestSCGIterCapBoundStaysValid(t *testing.T) {
	p := benchmarks.CyclicCovering(3, 40, 25, 3)
	opt := SolveExact(p, ExactOptions{})
	if !opt.Optimal {
		t.Fatal("reference solve did not finish")
	}
	res := SolveSCG(p, SCGOptions{Budget: Budget{IterCap: 5}})
	if !res.Interrupted || res.StopReason != StopIterCap {
		t.Fatalf("Interrupted=%v StopReason=%v, want iteration-cap interruption",
			res.Interrupted, res.StopReason)
	}
	if res.Solution == nil || !p.IsCover(res.Solution) {
		t.Fatal("capped solve must still return a feasible cover")
	}
	if res.LB > float64(opt.Cost)+1e-9 {
		t.Fatalf("interrupted LB %v exceeds the true optimum %d", res.LB, opt.Cost)
	}
}

func TestZDDNodeCapFallsBackToExplicit(t *testing.T) {
	p := benchmarks.CyclicCovering(5, 120, 60, 3)
	capped := SolveSCG(p, SCGOptions{Seed: 9, Budget: Budget{NodeCap: 16}})
	explicit := SolveSCG(p, SCGOptions{Seed: 9, DisableImplicit: true})
	if !capped.Stats.ImplicitAborted {
		t.Fatal("a 16-node cap should abort the implicit phase")
	}
	if capped.Interrupted {
		t.Fatal("node-cap exhaustion is graceful degradation, not an interruption")
	}
	if capped.Cost != explicit.Cost {
		t.Fatalf("node-cap fallback cost %d differs from DisableImplicit cost %d",
			capped.Cost, explicit.Cost)
	}
	if len(capped.Solution) != len(explicit.Solution) {
		t.Fatalf("fallback solution %v differs from DisableImplicit solution %v",
			capped.Solution, explicit.Solution)
	}
	for i := range capped.Solution {
		if capped.Solution[i] != explicit.Solution[i] {
			t.Fatalf("fallback solution %v differs from DisableImplicit solution %v",
				capped.Solution, explicit.Solution)
		}
	}
}

func TestExactCancelledReturnsBestSoFar(t *testing.T) {
	p := slowProblem()
	res := SolveExact(p, ExactOptions{Budget: Budget{Context: cancelledCtx()}})
	if !res.Interrupted || res.StopReason != StopCancelled {
		t.Fatalf("Interrupted=%v StopReason=%v, want cancellation", res.Interrupted, res.StopReason)
	}
	if res.Optimal {
		t.Fatal("interrupted search must not claim optimality")
	}
	if res.Solution == nil || !p.IsCover(res.Solution) {
		t.Fatal("interrupted exact solve must fall back to a feasible cover")
	}
	if res.LB > res.Cost {
		t.Fatalf("root bound %d exceeds the feasible cost %d", res.LB, res.Cost)
	}
}

func TestExactSearchCapViaBudget(t *testing.T) {
	p := benchmarks.CyclicCovering(11, 120, 60, 3)
	res := SolveExact(p, ExactOptions{Budget: Budget{SearchCap: 3}})
	if !res.Interrupted || res.StopReason != StopSearchCap {
		t.Fatalf("Interrupted=%v StopReason=%v, want search-cap interruption",
			res.Interrupted, res.StopReason)
	}
	if res.Solution == nil || !p.IsCover(res.Solution) {
		t.Fatal("capped exact solve must still return a feasible cover")
	}
}

func TestGreedyBudgetCompletesCover(t *testing.T) {
	p := slowProblem()
	sol, interrupted, err := SolveGreedyBudget(p, Budget{Context: cancelledCtx()})
	if err != nil {
		t.Fatal(err)
	}
	if !interrupted {
		t.Fatal("cancelled greedy not flagged interrupted")
	}
	if !p.IsCover(sol) {
		t.Fatal("greedy is the bottom rung: it must always complete the cover")
	}
}

func TestGreedyInfeasibleSentinel(t *testing.T) {
	p, err := NewProblem([][]int{{0}, {}}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveGreedy(p); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestBinateCancelledFlagsInterruption(t *testing.T) {
	u := slowProblem()
	bp, err := BinateFromUnate(u)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res := SolveBinate(bp, BinateOptions{Budget: Budget{Context: cancelledCtx()}})
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancelled binate solve did not return promptly")
	}
	if !res.Interrupted || res.StopReason != StopCancelled {
		t.Fatalf("Interrupted=%v StopReason=%v, want cancellation", res.Interrupted, res.StopReason)
	}
	if res.Optimal {
		t.Fatal("interrupted binate search must not claim optimality")
	}
}

func TestMinimizeSCGDeadline(t *testing.T) {
	f, err := ParsePLA(strings.NewReader(samplePLA))
	if err != nil {
		t.Fatal(err)
	}
	res, err := MinimizeSCG(f, SCGOptions{Budget: Budget{Context: cancelledCtx()}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatal("cancelled minimisation not flagged Interrupted")
	}
	if res.ProvedOptimal || res.LB != 0 {
		t.Fatal("a partial prime set certifies no bound on the true minimum")
	}
	if !Equivalent(f, res.Cover) {
		t.Fatal("interrupted minimisation must still implement the function")
	}
}

func TestMinimizeEspressoBudgetStaysValid(t *testing.T) {
	f, err := ParsePLA(strings.NewReader(samplePLA))
	if err != nil {
		t.Fatal(err)
	}
	res := MinimizeEspressoBudget(f, EspressoStrong, Budget{Context: cancelledCtx()})
	if !res.Interrupted || res.StopReason != StopCancelled {
		t.Fatalf("Interrupted=%v StopReason=%v, want cancellation", res.Interrupted, res.StopReason)
	}
	if !Equivalent(f, res.Cover) {
		t.Fatal("interrupted espresso cover must still implement the function")
	}
}
