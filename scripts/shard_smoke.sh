#!/bin/sh
# shard_smoke.sh — end-to-end smoke test of the out-of-core sharded
# solve: scpgen streams a ~26 MB-decoded instance to disk, ucpsolve
# streams it back through the sharded driver under a 6 MiB tracked-byte
# budget (>4x smaller than the instance) with the Go runtime held to a
# small GOMEMLIMIT envelope, and the script asserts the solve finished,
# actually spilled components, and kept its tracked peak under the
# budget.  Run via `make shard-smoke`.
set -eu

GO=${GO:-go}
BUDGET=${BUDGET:-6291456}         # 6 MiB tracked-byte budget
MEMLIMIT=${MEMLIMIT:-64MiB}       # runtime envelope for the whole solve

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

$GO build -o "$tmp/scpgen" ./cmd/scpgen
$GO build -o "$tmp/ucpsolve" ./cmd/ucpsolve

# 800 components x 500 rows x 60 cols at degree 5: 400k rows / 2M
# nonzeros, ~25.6 MB decoded (rows*24 + nnz*8) — 4.3x the budget.
"$tmp/scpgen" -seed 17 -components 800 -rows 500 -cols 60 -degree 5 -maxcost 8 \
    -o "$tmp/big.txt" 2>/dev/null

echo "shard-smoke: solving under -mem-budget $BUDGET (GOMEMLIMIT=$MEMLIMIT)"
GOMEMLIMIT=$MEMLIMIT "$tmp/ucpsolve" -orlib "$tmp/big.txt" \
    -mem-budget "$BUDGET" -spill-dir "$tmp" -v >"$tmp/out.txt"
cat "$tmp/out.txt"

grep -q '^scg: cost' "$tmp/out.txt" || {
    echo "shard-smoke: no solution line in the output" >&2
    exit 1
}

# "shard: N components (S spilled, R respilled, D degraded), peak P tracked bytes"
shard=$(grep '^shard:' "$tmp/out.txt") || {
    echo "shard-smoke: no shard counters in the -v output" >&2
    exit 1
}
spilled=$(echo "$shard" | awk -F'[(,]' '{print $2}' | awk '{print $1}')
peak=$(echo "$shard" | awk '{print $(NF-2)}')

if [ "$spilled" -le 0 ]; then
    echo "shard-smoke: no components spilled — the budget did not bind" >&2
    exit 1
fi
if [ "$peak" -gt "$BUDGET" ]; then
    echo "shard-smoke: tracked peak $peak exceeds the $BUDGET budget" >&2
    exit 1
fi
echo "shard-smoke: $spilled components spilled, peak $peak <= $BUDGET"
