#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of the ucpd solve service:
# start the daemon, hammer it with ucpload for a few seconds, assert
# zero server-side failures, then SIGTERM it and assert a clean drain
# (exit 0 with the drain banner on stderr).  Run via `make serve-smoke`.
set -eu

DURATION=${DURATION:-5s}
CONC=${CONC:-8}
PORT=${PORT:-18091}
GO=${GO:-go}

tmp=$(mktemp -d)
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT

$GO build -o "$tmp/ucpd" ./cmd/ucpd
$GO build -o "$tmp/ucpload" ./cmd/ucpload

"$tmp/ucpd" -addr "127.0.0.1:$PORT" 2>"$tmp/ucpd.log" &
pid=$!

# Wait for the daemon to accept requests.
i=0
until "$tmp/ucpload" -addr "http://127.0.0.1:$PORT" -c 1 -duration 100ms -problems 1 -fail-on-5xx >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "serve-smoke: ucpd never came up" >&2
        cat "$tmp/ucpd.log" >&2
        exit 1
    fi
    sleep 0.1
done

echo "serve-smoke: unary load ($CONC workers, $DURATION)"
"$tmp/ucpload" -addr "http://127.0.0.1:$PORT" -c "$CONC" -duration "$DURATION" -fail-on-5xx

echo "serve-smoke: streaming load ($CONC workers, 2s)"
"$tmp/ucpload" -addr "http://127.0.0.1:$PORT" -c "$CONC" -duration 2s -stream -fail-on-5xx

kill -TERM "$pid"
drain=0
wait "$pid" || drain=$?
if [ "$drain" -ne 0 ]; then
    echo "serve-smoke: ucpd exited $drain on SIGTERM, want 0" >&2
    cat "$tmp/ucpd.log" >&2
    exit 1
fi
if ! grep -q 'drained' "$tmp/ucpd.log"; then
    echo "serve-smoke: no drain banner in the daemon log" >&2
    cat "$tmp/ucpd.log" >&2
    exit 1
fi
echo "serve-smoke: clean drain"
