package ucp

import (
	"math/rand"
	"testing"

	"ucp/internal/benchmarks"
)

// sameSCG asserts the bit-identity contract between two SCG results
// (timings and cache counters exempt).
func sameSCG(t *testing.T, label string, got, want *SCGResult) {
	t.Helper()
	if len(got.Solution) != len(want.Solution) {
		t.Fatalf("%s: solutions differ: %v vs %v", label, got.Solution, want.Solution)
	}
	for i := range want.Solution {
		if got.Solution[i] != want.Solution[i] {
			t.Fatalf("%s: solutions differ: %v vs %v", label, got.Solution, want.Solution)
		}
	}
	if got.Cost != want.Cost || got.LB != want.LB || got.ProvedOptimal != want.ProvedOptimal {
		t.Fatalf("%s: cost/LB differ", label)
	}
	if got.Stats.Runs != want.Stats.Runs || got.Stats.SubgradIters != want.Stats.SubgradIters ||
		got.Stats.FixSteps != want.Stats.FixSteps {
		t.Fatalf("%s: stats differ: %+v vs %+v", label, got.Stats, want.Stats)
	}
}

// TestSolverResolveChain: explicit-handle resolves along an edit chain
// are bit-identical to cold kept solves of each child.
func TestSolverResolveChain(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	s := NewSolver(SolverOptions{})
	for trial := 0; trial < 15; trial++ {
		p := benchmarks.RandomCovering(rng.Int63(), 20, 15, 0.3, 3)
		opt := SCGOptions{Seed: int64(trial), NumIter: 2, Workers: 1 + trial%4}
		_, keep := s.SolveSCGKeep(p, opt)
		cur := p
		for gen := 0; gen < 2; gen++ {
			src := cur.Rows[rng.Intn(len(cur.Rows))]
			row := append(append([]int(nil), src...), rng.Intn(cur.NCol))
			d, err := cur.AddRows([][]int{row})
			if err != nil {
				t.Fatal(err)
			}
			cold := NewSolver(SolverOptions{ArenaSize: -1})
			want, _ := cold.SolveSCGKeep(d.Child, opt)
			got, next := s.Resolve(d, keep, opt, ResolveOptions{})
			sameSCG(t, "chain", got, want)
			keep, cur = next, d.Child
		}
	}
	st := s.ResolveStats()
	if st.Resolves == 0 || st.ParentHits != st.Resolves {
		t.Fatalf("resolve stats wrong: %+v", st)
	}
}

// TestSolverResolveArena: with no handle passed, the ancestor arena
// recovers the parent state by structural fingerprint.
func TestSolverResolveArena(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	s := NewSolver(SolverOptions{})
	p := benchmarks.RandomCovering(7, 25, 18, 0.3, 3)
	opt := SCGOptions{Seed: 5, NumIter: 2}
	_, _ = s.SolveSCGKeep(p, opt)

	src := p.Rows[rng.Intn(len(p.Rows))]
	row := append(append([]int(nil), src...), rng.Intn(p.NCol))
	d, err := p.AddRows([][]int{row})
	if err != nil {
		t.Fatal(err)
	}
	cold := NewSolver(SolverOptions{ArenaSize: -1})
	want, _ := cold.SolveSCGKeep(d.Child, opt)
	got, _ := s.Resolve(d, nil, opt, ResolveOptions{})
	sameSCG(t, "arena", got, want)

	rs := s.ResolveStats()
	if rs.ArenaHits != 1 {
		t.Fatalf("expected one arena hit: %+v", rs)
	}
	as := s.ArenaStats()
	if as.Hits != 1 || as.Entries == 0 {
		t.Fatalf("arena stats wrong: %+v", as)
	}

	// A foreign parent misses the arena and falls back to a cold solve,
	// still correct.
	q := benchmarks.RandomCovering(99, 25, 18, 0.3, 3)
	dq := DeltaBetween(q, d.Child)
	got2, _ := s.Resolve(dq, nil, opt, ResolveOptions{})
	sameSCG(t, "miss", got2, want)
	if rs2 := s.ResolveStats(); rs2.ArenaMisses == 0 {
		t.Fatalf("expected an arena miss: %+v", rs2)
	}
}

// TestSolverResolveNoArena: a Solver with the arena disabled still
// resolves correctly (from scratch) with nil parents.
func TestSolverResolveNoArena(t *testing.T) {
	s := NewSolver(SolverOptions{ArenaSize: -1})
	p := benchmarks.RandomCovering(3, 15, 12, 0.3, 3)
	opt := SCGOptions{Seed: 1}
	d, err := p.AddRows([][]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := s.SolveSCGKeep(d.Child, opt)
	got, _ := s.Resolve(d, nil, opt, ResolveOptions{})
	sameSCG(t, "noarena", got, want)
	if as := s.ArenaStats(); as != (ArenaStats{}) {
		t.Fatalf("disabled arena counted: %+v", as)
	}
}

// TestResolvableAccessors: the handle exposes its result and problem.
func TestResolvableAccessors(t *testing.T) {
	s := NewSolver(SolverOptions{})
	p := benchmarks.RandomCovering(11, 12, 10, 0.3, 3)
	res, keep := s.SolveSCGKeep(p, SCGOptions{Seed: 2})
	if keep.Result() != res {
		t.Fatal("Result accessor mismatch")
	}
	if keep.Problem() != p {
		t.Fatal("Problem accessor mismatch")
	}
}
