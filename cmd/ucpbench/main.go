// Command ucpbench regenerates the paper's evaluation: Figure 1, the
// easy-cyclic aggregate, Tables 1–4, the Proposition 1 bound study and
// the ablation sweeps, on the seeded replica instances.
//
// Usage:
//
//	ucpbench -experiment all
//	ucpbench -experiment table1
//	ucpbench -experiment table3 -nodes 500000 -numiter 4
//
// Experiments: figure1, easy, table1, table2, table3, table4, bounds,
// frontend, ablations, all.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"ucp"
	"ucp/internal/harness"
	"ucp/internal/interrupt"
	"ucp/internal/prof"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "figure1|easy|table1|table2|table3|table4|bounds|frontend|ablations|all")
		frontCap   = flag.Duration("frontend-cap", 5*time.Second, "per-instance consensus cap in the front-end study")
		nodes      = flag.Int64("nodes", 50_000, "node budget for the exact comparator (0 = unlimited)")
		numIter    = flag.Int("numiter", 2, "ZDD_SCG constructive runs for tables 3 and 4")
		samples    = flag.Int("samples", 20, "instances in the bound study")
		timeout    = flag.Duration("timeout", 0, "wall-clock budget for the whole run, e.g. 5m (0 = unlimited); remaining experiments are skipped once it expires")
		useCache   = flag.Bool("cache", false, "share a cross-solve cache across experiments (ablation sweeps and Tables 3-4 revisit problems)")
		cacheSize  = flag.Int("cache-size", ucp.DefaultCacheSize, "session cache capacity in entries (with -cache)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()
	w := os.Stdout

	if *useCache {
		c := ucp.NewCache(*cacheSize, ucp.DefaultCacheMinWork)
		harness.UseCache(c)
		defer func() {
			cs := c.Stats()
			fmt.Fprintf(w, "session cache: %d entries, %d hits / %d misses, %d dedups, %d stores, %d evictions\n",
				cs.Entries, cs.Hits, cs.Misses, cs.Dedups, cs.Stores, cs.Evictions)
		}()
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ucpbench: %v\n", err)
		os.Exit(1)
	}
	defer stopProf()

	// The deadline (and Ctrl-C) is checked between experiments: each
	// experiment that starts runs to completion, so every printed table
	// is whole and the run degrades by dropping trailing experiments.
	// A second Ctrl-C flushes the profiles and exits immediately.
	ctx, stop := interrupt.Handle(context.Background(), func() { stopProf() }, os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	run := func(name string) {
		switch name {
		case "figure1":
			fmt.Fprintln(w, "== Figure 1: independent-set vs dual-ascent vs linear bounds ==")
			harness.WriteFigure1(w, harness.Figure1())
		case "easy":
			fmt.Fprintln(w, "== Experiment 1: 49 easy cyclic instances ==")
			harness.WriteEasy(w, harness.EasyCyclic())
		case "table1":
			fmt.Fprintln(w, "== Table 1: difficult cyclic, ZDD_SCG vs Espresso ==")
			harness.WriteHeuristic(w, harness.Table1())
		case "table2":
			fmt.Fprintln(w, "== Table 2: challenging, ZDD_SCG vs Espresso ==")
			harness.WriteHeuristic(w, harness.Table2())
		case "table3":
			fmt.Fprintln(w, "== Table 3: difficult cyclic, ZDD_SCG vs exact ==")
			harness.WriteExact(w, harness.Table3(*numIter, *nodes))
		case "table4":
			fmt.Fprintln(w, "== Table 4: challenging, ZDD_SCG vs exact ==")
			harness.WriteExact(w, harness.Table4(*numIter, *nodes))
		case "bounds":
			fmt.Fprintln(w, "== Proposition 1: bound dominance on random instances ==")
			harness.WriteBounds(w, harness.BoundsStudy(*samples))
		case "frontend":
			fmt.Fprintln(w, "== Front-end study: dense bit-slice sweep vs iterated consensus ==")
			harness.WriteFrontEnd(w, *frontCap, harness.FrontEndStudy(*frontCap))
		case "ablations":
			fmt.Fprintln(w, "== Ablations (DESIGN.md section 5) ==")
			harness.WriteAblation(w, "alpha sweep (sigma = ctilde - alpha*mu)", harness.AblationAlpha())
			harness.WriteAblation(w, "penalty / promising fixing", harness.AblationPenalties())
			harness.WriteAblation(w, "implicit (ZDD) vs explicit reductions", harness.AblationImplicit())
			harness.WriteAblation(w, "multiplier warm start across fixing phases", harness.AblationSolverWarmStart())
			harness.WriteAblation(w, "stochastic restarts", harness.AblationRestarts())
			fmt.Fprintln(w, "greedy rating functions (standalone, true costs):")
			for _, g := range harness.AblationGamma() {
				fmt.Fprintf(w, "  %-16s total=%d\n", g.Label, g.Total)
			}
			fmt.Fprintln(w, "subgradient warm start (60-iteration budget):")
			for _, r := range harness.AblationWarmStart() {
				fmt.Fprintf(w, "  %-18s totalLB=%.2f iters=%d\n", r.Label, r.TotalLB, r.Iters)
			}
		default:
			fmt.Fprintf(os.Stderr, "ucpbench: unknown experiment %q\n", name)
			stopProf() // os.Exit skips the deferred flush
			os.Exit(2)
		}
		fmt.Fprintln(w)
	}

	if *experiment == "all" {
		for _, name := range []string{"figure1", "bounds", "frontend", "easy", "table1", "table2", "table3", "table4", "ablations"} {
			if err := ctx.Err(); err != nil {
				fmt.Fprintf(w, "ucpbench: budget exhausted (%v); skipping %s and later experiments — results above are partial\n", err, name)
				return
			}
			run(name)
		}
		return
	}
	if err := ctx.Err(); err != nil {
		fmt.Fprintf(w, "ucpbench: budget exhausted (%v) before the experiment started\n", err)
		return
	}
	run(*experiment)
}
