// Command scpgen generates large random set-covering instances with
// controllable connected-component structure, streaming them straight
// to disk so instances far larger than memory can be produced.  The
// instance is Components independent column blocks; every row covers
// its block's spine column plus degree-1 further random columns of the
// block, and rows interleave round-robin across blocks — the worst
// case for a streaming partitioner, which makes the output the natural
// test feed for `ucpsolve -mem-budget`.
//
// Usage:
//
//	scpgen -components 500 -rows 1000 -cols 80 -degree 6 -o big.txt
//	scpgen -format matrix -maxcost 10 -seed 3 -o big.ucp
//	scpgen | ucpsolve -orlib /dev/stdin -mem-budget 64M
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ucp/internal/benchmarks"
)

func main() {
	var (
		out        = flag.String("o", "", "output file (default stdout)")
		format     = flag.String("format", "orlib", "orlib | matrix")
		seed       = flag.Int64("seed", 1, "generator seed (the instance is deterministic in it)")
		components = flag.Int("components", 100, "connected components (independent column blocks)")
		rows       = flag.Int("rows", 200, "rows per component")
		cols       = flag.Int("cols", 50, "columns per component")
		degree     = flag.Int("degree", 4, "columns per row, block spine included")
		maxCost    = flag.Int("maxcost", 0, "column costs uniform in [1, maxcost]; 0 = unit costs")
	)
	flag.Parse()

	spec := benchmarks.ComponentSpec{
		Seed:        *seed,
		Components:  *components,
		RowsPerComp: *rows,
		ColsPerComp: *cols,
		RowDegree:   *degree,
		MaxCost:     *maxCost,
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		w = f
	}

	var err error
	switch *format {
	case "orlib":
		err = spec.WriteORLib(w)
	case "matrix":
		err = spec.WriteMatrix(w)
	default:
		fatal("unknown format %q (want orlib or matrix)", *format)
	}
	if err != nil {
		fatal("%v", err)
	}
	fmt.Fprintf(os.Stderr, "scpgen: %d rows x %d columns in %d components\n",
		spec.NumRows(), spec.NumCols(), spec.Components)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "scpgen: "+format+"\n", args...)
	os.Exit(1)
}
