// Command benchfmt converts `go test -bench` text output (on stdin)
// into a small JSON document: one entry per benchmark line with every
// reported metric, plus a per-benchmark min/mean/max summary across
// -count repetitions.  It exists so `make bench` can commit a stable,
// diffable baseline (BENCH_pr5.json) instead of raw bench text.
//
//	go test -run '^$' -bench . -benchtime 1x -count 5 . | benchfmt -o BENCH_pr5.json
//
// With -against it also diffs the run against a committed baseline and
// exits non-zero on regression (`make bench-diff`).  A baseline that is
// missing, unreadable, malformed or empty is itself a failure — a CI
// gate must never pass because its reference quietly vanished:
//
//	go test -run '^$' -bench . -benchtime 1x -count 3 . | benchfmt -against BENCH_pr4.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Entry is one benchmark result line.
type Entry struct {
	Name    string             `json:"name"`  // without the -procs suffix
	Procs   int                `json:"procs"` // GOMAXPROCS suffix (1 if absent)
	Runs    int64              `json:"runs"`  // b.N
	Metrics map[string]float64 `json:"metrics"`
}

// Stat summarises one metric of one benchmark across repetitions.
type Stat struct {
	Count int     `json:"count"`
	Min   float64 `json:"min"`
	Mean  float64 `json:"mean"`
	Max   float64 `json:"max"`
}

// Doc is the output document.
type Doc struct {
	Date      string `json:"date"`
	GoVersion string `json:"go"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPU       string `json:"cpu,omitempty"`
	NumCPU    int    `json:"numcpu"`
	Note      string `json:"note,omitempty"`
	Entries   []Entry
	// Summary maps "name-procs" → metric → stats.
	Summary map[string]map[string]*Stat `json:"summary"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is main behind injectable streams so the exit paths are
// testable.  It returns the process exit code: 0 on success, 1 on a
// regression or an unusable baseline, 2 on a flag error.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchfmt", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "output file (default stdout)")
	note := fs.String("note", "", "free-form note recorded in the document")
	against := fs.String("against", "", "baseline JSON document to compare with; exits non-zero on regression")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "benchfmt: "+format+"\n", a...)
		return 1
	}

	// Load the baseline before reading the (expensive) bench stream, so
	// a bad -against path fails fast.
	var base *Doc
	if *against != "" {
		var err error
		if base, err = loadBaseline(*against); err != nil {
			return fail("%v", err)
		}
	}

	doc := &Doc{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Note:      *note,
		Summary:   map[string]map[string]*Stat{},
	}

	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(stdout, line) // pass the raw output through for the terminal
		if cpu, ok := strings.CutPrefix(line, "cpu:"); ok {
			doc.CPU = strings.TrimSpace(cpu)
			continue
		}
		e, ok := parseLine(line)
		if !ok {
			continue
		}
		doc.Entries = append(doc.Entries, e)
		key := fmt.Sprintf("%s-%d", e.Name, e.Procs)
		m := doc.Summary[key]
		if m == nil {
			m = map[string]*Stat{}
			doc.Summary[key] = m
		}
		for unit, v := range e.Metrics {
			s := m[unit]
			if s == nil {
				s = &Stat{Min: v, Max: v}
				m[unit] = s
			}
			s.Count++
			s.Mean += v // sum for now; divided below
			if v < s.Min {
				s.Min = v
			}
			if v > s.Max {
				s.Max = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fail("read: %v", err)
	}
	for _, m := range doc.Summary {
		for _, s := range m {
			s.Mean /= float64(s.Count)
		}
	}
	sort.Slice(doc.Entries, func(a, b int) bool {
		ea, eb := doc.Entries[a], doc.Entries[b]
		if ea.Name != eb.Name {
			return ea.Name < eb.Name
		}
		return ea.Procs < eb.Procs
	})

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fail("marshal: %v", err)
	}
	buf = append(buf, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			return fail("write: %v", err)
		}
	} else if *against == "" {
		stdout.Write(buf)
	}

	if base != nil && !compare(stdout, doc, base, *against) {
		return 1
	}
	return 0
}

// loadBaseline reads and validates an -against document.  Every way
// the baseline can be useless — missing file, malformed JSON, a JSON
// document with no benchmark summaries — is an error: a silent pass
// against a vanished reference would defeat the regression gate.
func loadBaseline(path string) (*Doc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline %s: %v", path, err)
	}
	base := &Doc{}
	if err := json.Unmarshal(raw, base); err != nil {
		return nil, fmt.Errorf("baseline %s: malformed JSON: %v", path, err)
	}
	if len(base.Summary) == 0 {
		return nil, fmt.Errorf("baseline %s: no benchmark summaries (empty or truncated document)", path)
	}
	return base, nil
}

// Regression thresholds for -against: timing may wobble by up to 75%
// before failing the gate — the shared container drifts between load
// windows whose minima differ by ~1.5× on millisecond-scale benches
// (measured on the ZDD substrates), so any tighter bound flakes on
// noise while a real slowdown worth acting on (2×+) still fails —
// plus an absolute slack so sub-millisecond benchmarks, whose noise
// floor (scheduler ticks, cold caches) is a large fraction of the
// runtime, don't flake either.  The precise half of the gate is
// allocations: counts are near-deterministic, but the parallel
// portfolio's sync.Pool behaviour is scheduler-dependent, so its count
// jitters by a few per-op in the hundreds of thousands between runs; a
// 0.5% allowance absorbs that while a real leak (orders of magnitude
// larger) still fails.
const (
	maxNsGrowth     = 0.75
	minNsSlack      = 100e3 // 100µs
	maxAllocsGrowth = 0.005
)

// compare prints a per-benchmark delta table of the current document
// against a baseline and reports whether the gate passes.  Metrics are
// compared on their minima (the least-noise repetition); benchmarks or
// metrics absent from the baseline are reported but never fail.
func compare(w io.Writer, doc, base *Doc, name string) bool {
	fmt.Fprintf(w, "\nvs %s:\n", name)
	keys := make([]string, 0, len(doc.Summary))
	for key := range doc.Summary {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	ok := true
	for _, key := range keys {
		bm := base.Summary[key]
		if bm == nil {
			fmt.Fprintf(w, "  %-44s (not in baseline)\n", key)
			continue
		}
		units := make([]string, 0, len(doc.Summary[key]))
		for unit := range doc.Summary[key] {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			s, bs := doc.Summary[key][unit], bm[unit]
			if bs == nil {
				fmt.Fprintf(w, "  %-44s %12.4g %-11s (metric not in baseline)\n", key, s.Min, unit)
				continue
			}
			verdict := ""
			switch {
			case unit == "allocs/op" && s.Min > bs.Min*(1+maxAllocsGrowth):
				verdict = "REGRESSION (allocation growth)"
				ok = false
			case unit == "ns/op" && bs.Min > 0 && s.Min > bs.Min*(1+maxNsGrowth)+minNsSlack:
				verdict = fmt.Sprintf("REGRESSION (>%d%% slower)", int(maxNsGrowth*100))
				ok = false
			}
			delta := "n/a"
			if bs.Min != 0 {
				delta = fmt.Sprintf("%+.1f%%", (s.Min-bs.Min)/bs.Min*100)
			}
			fmt.Fprintf(w, "  %-44s %12.4g %-11s baseline %12.4g  %8s  %s\n",
				key, s.Min, unit, bs.Min, delta, verdict)
		}
	}
	if ok {
		fmt.Fprintln(w, "  no regressions")
	}
	return ok
}

// parseLine decodes one "BenchmarkName-8  N  v1 unit1  v2 unit2 ..."
// result line; ok is false for any other line.
func parseLine(line string) (Entry, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") || len(f)%2 != 0 {
		return Entry{}, false
	}
	e := Entry{Name: f[0], Procs: 1, Metrics: map[string]float64{}}
	if i := strings.LastIndexByte(f[0], '-'); i > 0 {
		if procs, err := strconv.Atoi(f[0][i+1:]); err == nil {
			e.Name, e.Procs = f[0][:i], procs
		}
	}
	runs, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e.Runs = runs
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Entry{}, false
		}
		e.Metrics[f[i+1]] = v
	}
	return e, true
}
