package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchStream = `goos: linux
cpu: Test CPU @ 2.0GHz
BenchmarkFoo-8   	      10	   1000000 ns/op	    2048 B/op	      12 allocs/op
BenchmarkFoo-8   	      10	   1100000 ns/op	    2048 B/op	      12 allocs/op
PASS
`

func runWith(t *testing.T, stdin string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestEmitsDocument(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	code, _, stderr := runWith(t, benchStream, "-o", out, "-note", "test run")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"BenchmarkFoo-8"`, `"ns/op"`, `"note": "test run"`, `"min": 1000000`} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("document missing %s:\n%s", want, raw)
		}
	}
}

// The -against gate must fail loudly — one clear line, nonzero exit —
// when the baseline is missing, malformed, or carries no summaries,
// instead of silently passing against nothing.
func TestAgainstUnusableBaseline(t *testing.T) {
	cases := []struct {
		name, path, wantErr string
	}{
		{"missing", filepath.Join(t.TempDir(), "nope.json"), "baseline"},
		{"malformed", "", "malformed JSON"},
		{"null-doc", "", "no benchmark summaries"},
		{"empty-summary", "", "no benchmark summaries"},
	}
	cases[1].path = writeFile(t, "bad.json", "{not json")
	cases[2].path = writeFile(t, "null.json", "null")
	cases[3].path = writeFile(t, "empty.json", `{"summary": {}}`)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runWith(t, benchStream, "-against", tc.path)
			if code == 0 {
				t.Fatalf("exit 0 against unusable baseline %s", tc.path)
			}
			if !strings.Contains(stderr, tc.wantErr) {
				t.Errorf("stderr %q does not mention %q", stderr, tc.wantErr)
			}
			if n := strings.Count(strings.TrimRight(stderr, "\n"), "\n"); n != 0 {
				t.Errorf("want a one-line error, got %d lines: %q", n+1, stderr)
			}
		})
	}
}

func TestAgainstDetectsRegression(t *testing.T) {
	// Baseline where BenchmarkFoo-8 was 2x faster than the stream.
	base := writeFile(t, "base.json", `{"summary": {"BenchmarkFoo-8": {"ns/op": {"count": 1, "min": 400000, "mean": 400000, "max": 400000}}}}`)
	code, stdout, _ := runWith(t, benchStream, "-against", base)
	if code == 0 {
		t.Fatal("regression not detected")
	}
	if !strings.Contains(stdout, "REGRESSION") {
		t.Errorf("output does not flag the regression:\n%s", stdout)
	}
}

func TestAgainstPassesWithinTolerance(t *testing.T) {
	base := writeFile(t, "base.json", `{"summary": {"BenchmarkFoo-8": {"ns/op": {"count": 1, "min": 990000, "mean": 990000, "max": 990000}}}}`)
	code, stdout, stderr := runWith(t, benchStream, "-against", base)
	if code != 0 {
		t.Fatalf("exit %d within tolerance; stdout:\n%s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "no regressions") {
		t.Errorf("output missing pass line:\n%s", stdout)
	}
}

func TestParseLine(t *testing.T) {
	e, ok := parseLine("BenchmarkBar-16   	     100	     52341 ns/op	  12 extra/op")
	if !ok || e.Name != "BenchmarkBar" || e.Procs != 16 || e.Runs != 100 {
		t.Fatalf("parseLine: %+v ok=%v", e, ok)
	}
	if e.Metrics["ns/op"] != 52341 || e.Metrics["extra/op"] != 12 {
		t.Errorf("metrics: %v", e.Metrics)
	}
	if _, ok := parseLine("PASS"); ok {
		t.Error("PASS line parsed as a benchmark")
	}
}
