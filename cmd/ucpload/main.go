// Command ucpload is the load generator for ucpd: it fires a fixed
// concurrency of solve requests at a server for a fixed duration and
// reports latency percentiles and a histogram, the cache-hit rate,
// admission rejections (429/503) and every status class it saw.  With
// -fail-on-5xx it exits non-zero when any request failed server-side —
// the CI smoke test drives it that way.
//
// Usage:
//
//	ucpload -addr http://localhost:8080 -c 8 -duration 5s
//	ucpload -addr http://localhost:8080 -stream -problems 4
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"ucp/internal/benchmarks"
	"ucp/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", "http://localhost:8080", "ucpd base URL")
		conc      = flag.Int("c", 8, "concurrent requesters")
		duration  = flag.Duration("duration", 5*time.Second, "how long to fire")
		problems  = flag.Int("problems", 6, "distinct instances in the request mix (repeats exercise the cache)")
		rows      = flag.Int("rows", 150, "instance rows")
		cols      = flag.Int("cols", 100, "instance columns")
		deg       = flag.Int("deg", 4, "instance row degree")
		numIter   = flag.Int("numiter", 2, "scg constructive runs per request")
		timeoutMS = flag.Int64("timeout-ms", 10_000, "per-request budget sent to the server")
		tenants   = flag.Int("tenants", 3, "distinct tenant labels across requesters")
		stream    = flag.Bool("stream", false, "request SSE streams instead of unary responses")
		failOn5xx = flag.Bool("fail-on-5xx", false, "exit non-zero if any request failed server-side or on the wire")
	)
	flag.Parse()

	bodies := make([][]byte, *problems)
	for i := range bodies {
		p := benchmarks.CyclicCovering(int64(100+i), *rows, *cols, *deg)
		req := serve.Request{
			Format:    "json",
			Rows:      p.Rows,
			NCols:     p.NCol,
			Costs:     p.Cost,
			NumIter:   *numIter,
			Seed:      int64(1 + i),
			TimeoutMS: *timeoutMS,
			Stream:    *stream,
		}
		data, err := json.Marshal(&req)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ucpload: %v\n", err)
			os.Exit(1)
		}
		bodies[i] = data
	}

	type stats struct {
		latencies []time.Duration
		status    map[int]int
		cacheHits int
		solved    int
		netErrs   int
		records   int
	}
	results := make([]stats, *conc)
	// Twice the solve budget plus headroom for queueing.
	client := &http.Client{Timeout: 2*time.Duration(*timeoutMS)*time.Millisecond + 10*time.Second}
	deadline := time.Now().Add(*duration)

	var wg sync.WaitGroup
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &results[w]
			st.status = make(map[int]int)
			tenant := fmt.Sprintf("tenant-%d", w%*tenants)
			for i := 0; time.Now().Before(deadline); i++ {
				body := bodies[(w+i)%len(bodies)]
				t0 := time.Now()
				req, err := http.NewRequest(http.MethodPost, *addr+"/solve", bytes.NewReader(body))
				if err != nil {
					fmt.Fprintf(os.Stderr, "ucpload: %v\n", err)
					os.Exit(1)
				}
				req.Header.Set("Content-Type", "application/json")
				req.Header.Set("X-UCP-Tenant", tenant)
				resp, err := client.Do(req)
				if err != nil {
					st.netErrs++
					continue
				}
				final, nrec, ok := readResult(resp)
				resp.Body.Close()
				st.latencies = append(st.latencies, time.Since(t0))
				st.status[resp.StatusCode]++
				st.records += nrec
				if ok {
					if final.CacheHit {
						st.cacheHits++
					}
					if final.Solution != nil {
						st.solved++
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Merge.
	var all []time.Duration
	status := make(map[int]int)
	var cacheHits, solved, netErrs, records int
	for i := range results {
		all = append(all, results[i].latencies...)
		for k, v := range results[i].status {
			status[k] += v
		}
		cacheHits += results[i].cacheHits
		solved += results[i].solved
		netErrs += results[i].netErrs
		records += results[i].records
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	total := len(all)
	fmt.Printf("requests: %d in %v (%.1f/s), %d transport errors\n",
		total, *duration, float64(total)/(*duration).Seconds(), netErrs)
	var rejected, fivexx int
	var codes []int
	for c := range status {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Printf("  %d: %d\n", c, status[c])
		if c == http.StatusTooManyRequests || c == http.StatusServiceUnavailable {
			rejected += status[c]
		}
		if c >= 500 && c != http.StatusServiceUnavailable {
			fivexx += status[c]
		}
	}
	fmt.Printf("solved: %d   cache hits: %d (%.1f%%)   admission rejections: %d\n",
		solved, cacheHits, pct(cacheHits, solved), rejected)
	if *stream {
		fmt.Printf("stream records: %d (%.2f per request)\n", records, float64(records)/nz(total))
	}
	if total > 0 {
		fmt.Printf("latency: p50 %v  p90 %v  p99 %v  max %v\n",
			q(all, 0.50), q(all, 0.90), q(all, 0.99), all[total-1])
		printHistogram(all)
	}
	if *failOn5xx && (fivexx > 0 || netErrs > 0) {
		fmt.Fprintf(os.Stderr, "ucpload: %d server-side failures, %d transport errors\n", fivexx, netErrs)
		os.Exit(1)
	}
}

// readResult extracts the final record from a unary or SSE response
// and counts the records seen.
func readResult(resp *http.Response) (final serve.Response, records int, ok bool) {
	if strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<24)
		for sc.Scan() {
			line := sc.Text()
			const prefix = "data: "
			if !strings.HasPrefix(line, prefix) {
				continue
			}
			var r serve.Response
			if json.Unmarshal([]byte(line[len(prefix):]), &r) != nil {
				return final, records, false
			}
			records++
			final, ok = r, true
		}
		return final, records, ok && final.Final
	}
	if json.NewDecoder(resp.Body).Decode(&final) != nil {
		return final, 0, false
	}
	return final, 1, true
}

func q(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i].Round(time.Millisecond / 10)
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func nz(n int) float64 {
	if n == 0 {
		return 1
	}
	return float64(n)
}

// printHistogram renders exponential latency buckets.
func printHistogram(sorted []time.Duration) {
	bounds := []time.Duration{
		time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
		10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
		100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
		time.Second, 2 * time.Second,
	}
	counts := make([]int, len(bounds)+1)
	for _, d := range sorted {
		i := sort.Search(len(bounds), func(i int) bool { return d < bounds[i] })
		counts[i]++
	}
	max := 1
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	for i, c := range counts {
		if c == 0 {
			continue
		}
		label := fmt.Sprintf("< %v", bounds[i])
		if i == len(bounds) {
			label = fmt.Sprintf(">= %v", bounds[len(bounds)-1])
		}
		bar := strings.Repeat("#", 1+40*c/max)
		fmt.Printf("  %-10s %6d %s\n", label, c, bar)
	}
}
