// Command ucpsolve minimises a two-level function (Berkeley PLA
// format) or solves a unate covering problem (the package's matrix
// text format) with a selectable solver.
//
// Usage:
//
//	ucpsolve -pla file.pla  [-solver scg|exact|espresso|espresso-strong] [-o out.pla]
//	ucpsolve -matrix f.ucp  [-solver scg|exact|greedy] [-bounds]
//	ucpsolve -orlib scp41.txt [-solver scg|exact|greedy] [-bounds]
//	ucpsolve -matrix f.ucp -delta g.ucp   # solve f, then re-solve g incrementally
//
// With -delta the second instance is solved by delta replay against
// the first solve's retained state (scg only): the edit between the
// two is reconstructed row by row, the recorded reductions are
// re-verified and replayed, and untouched portfolio blocks are reused
// — the result is bit-identical to solving the second instance from
// scratch.
//
// The default solver is scg (the paper's ZDD_SCG heuristic).  With
// -timeout the solve stops at the deadline and prints the best cover
// and bound found so far; Ctrl-C does the same immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"ucp"
	"ucp/internal/interrupt"
	"ucp/internal/prof"
)

func main() {
	var (
		plaPath    = flag.String("pla", "", "input PLA file (two-level minimisation)")
		matrixPath = flag.String("matrix", "", "input covering-matrix file")
		orlibPath  = flag.String("orlib", "", "input set-covering file in Beasley OR-Library format")
		solver     = flag.String("solver", "scg", "scg | exact | greedy | espresso | espresso-strong")
		out        = flag.String("o", "", "write the minimised PLA here (pla mode)")
		seed       = flag.Int64("seed", 1, "seed for the stochastic runs")
		numIter    = flag.Int("numiter", 1, "ZDD_SCG constructive runs")
		workers    = flag.Int("workers", 0, "goroutines for the ZDD_SCG restart portfolio (0 = GOMAXPROCS); results are identical for a given seed regardless")
		maxNodes   = flag.Int64("maxnodes", 0, "node cap for the exact solver (0 = unlimited)")
		timeout    = flag.Duration("timeout", 0, "wall-clock budget, e.g. 30s (0 = unlimited); on expiry or Ctrl-C the best solution so far is printed")
		deltaPath  = flag.String("delta", "", "second instance in the same format: solve the first, then re-solve this one incrementally (scg, matrix/orlib modes)")
		bounds     = flag.Bool("bounds", false, "also print the four lower bounds (matrix mode)")
		memBudget  = flag.String("mem-budget", "", "route scg solves through the out-of-core sharded driver under this many bytes of tracked instance memory, e.g. 256M or 2G; -matrix/-orlib inputs then stream from disk instead of loading whole (scg only)")
		spillDir   = flag.String("spill-dir", "", "directory for the sharded driver's spill file (default: the OS temp directory)")
		useCache   = flag.Bool("cache", false, "memoize solves in a session cache (useful with repeated invocations of the library; here mostly demonstrates the flag plumbing)")
		cacheSize  = flag.Int("cache-size", ucp.DefaultCacheSize, "session cache capacity in entries (with -cache)")
		verbose    = flag.Bool("v", false, "print cache and transposition-table statistics")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal("%v", err)
	}
	flushProfiles = stopProf
	defer stopProf()

	// Ctrl-C cancels the budget context: the solvers unwind with their
	// best-so-far cover instead of the process dying mid-solve.  A
	// second Ctrl-C skips the graceful unwind — profiles are flushed
	// and the process exits non-zero immediately.
	ctx, stop := interrupt.Handle(context.Background(), func() { flushProfiles() }, os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	bud := ucp.Budget{Context: ctx}

	var sopt ucp.SolverOptions
	if *useCache {
		sopt.Cache = ucp.NewCache(*cacheSize, ucp.DefaultCacheMinWork)
	}
	budget, err := parseBytes(*memBudget)
	if err != nil {
		fatal("-mem-budget: %v", err)
	}
	if budget > 0 && *solver != "scg" {
		fatal("-mem-budget works with -solver scg only")
	}
	sess := &session{Solver: ucp.NewSolver(sopt), verbose: *verbose, cached: *useCache,
		memBudget: budget, spillDir: *spillDir}

	inputs := 0
	for _, v := range []string{*plaPath, *matrixPath, *orlibPath} {
		if v != "" {
			inputs++
		}
	}
	switch {
	case inputs != 1:
		fatal("pass exactly one of -pla, -matrix and -orlib")
	case *plaPath != "":
		if *deltaPath != "" {
			fatal("-delta works with -matrix and -orlib only")
		}
		runPLA(sess, *plaPath, *solver, *out, *seed, *numIter, *workers, *maxNodes, bud)
	case *matrixPath != "":
		runMatrix(sess, *matrixPath, *deltaPath, false, *solver, *seed, *numIter, *workers, *maxNodes, *bounds, bud)
	default:
		runMatrix(sess, *orlibPath, *deltaPath, true, *solver, *seed, *numIter, *workers, *maxNodes, *bounds, bud)
	}
}

// session bundles the cache-carrying Solver with the -v switch and the
// out-of-core memory budget.
type session struct {
	*ucp.Solver
	verbose   bool
	cached    bool
	memBudget int64
	spillDir  string
}

// parseBytes parses a byte count with an optional binary suffix
// (K/M/G, with or without a trailing "b"/"ib"); empty means 0.
func parseBytes(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	t := strings.ToLower(strings.TrimSpace(s))
	mult := int64(1)
	for _, u := range []struct {
		suffix string
		mult   int64
	}{
		{"kib", 1 << 10}, {"kb", 1 << 10}, {"k", 1 << 10},
		{"mib", 1 << 20}, {"mb", 1 << 20}, {"m", 1 << 20},
		{"gib", 1 << 30}, {"gb", 1 << 30}, {"g", 1 << 30},
	} {
		if strings.HasSuffix(t, u.suffix) {
			t, mult = strings.TrimSuffix(t, u.suffix), u.mult
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad byte count %q", s)
	}
	if n > math.MaxInt64/mult {
		return 0, fmt.Errorf("byte count %q overflows", s)
	}
	return n * mult, nil
}

// report prints the solve's cache counters and the session cache's
// totals under -v.
func (s *session) report(hits, misses, ttHits int64) {
	if !s.verbose {
		return
	}
	fmt.Printf("cache: hits %d  misses %d  tt-hits %d\n", hits, misses, ttHits)
	cs := s.CacheStats()
	fmt.Printf("session cache: %d entries, %d hits / %d misses, %d dedups, %d stores, %d evictions\n",
		cs.Entries, cs.Hits, cs.Misses, cs.Dedups, cs.Stores, cs.Evictions)
}

// reportZDD prints the implicit phase's ZDD engine profile under -v:
// the peak node store the NodeCap budget meters, the live/plain node
// profile of the surviving family and its chain-compression ratio, and
// the mark-sweep collections the phase ran.  Solves that never touched
// the ZDD (dense shortcut, explicit-only paths) report peak 0 and
// print nothing.
func (s *session) reportZDD(peak, live, plain, collections int) {
	if !s.verbose || peak == 0 {
		return
	}
	ratio := 1.0
	if live > 0 {
		ratio = float64(plain) / float64(live)
	}
	fmt.Printf("zdd: peak %d nodes, live %d (plain-equivalent %d, chain ratio %.2fx), %d collections\n",
		peak, live, plain, ratio, collections)
}

// reportShard prints the out-of-core driver's scheduling profile under
// -v.  Direct (unsharded) solves report zero components and print
// nothing; sharded solves always report at least one.
func (s *session) reportShard(components, spilled, respilled, degraded int, peak int64) {
	if !s.verbose || components == 0 {
		return
	}
	fmt.Printf("shard: %d components (%d spilled, %d respilled, %d degraded), peak %d tracked bytes\n",
		components, spilled, respilled, degraded, peak)
}

// flushProfiles writes any active profiles; fatal must run it because
// os.Exit skips the deferred flush in main.
var flushProfiles = func() {}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ucpsolve: "+format+"\n", args...)
	flushProfiles()
	os.Exit(1)
}

func notice(interrupted bool, reason ucp.StopReason) {
	if interrupted {
		fmt.Printf("interrupted (%v): reporting the best solution found so far\n", reason)
	}
}

func runPLA(sess *session, path, solver, out string, seed int64, numIter, workers int, maxNodes int64, bud ucp.Budget) {
	f, err := ucp.ParsePLAFile(path)
	if err != nil {
		fatal("%v", err)
	}
	var res *ucp.TwoLevelResult
	switch solver {
	case "scg":
		res, err = sess.MinimizeSCG(f, ucp.SCGOptions{Seed: seed, NumIter: numIter, Workers: workers, Budget: bud,
			MemBudget: sess.memBudget, SpillDir: sess.spillDir})
	case "exact":
		res, err = sess.MinimizeExact(f, ucp.ExactOptions{MaxNodes: maxNodes, Budget: bud})
	case "espresso":
		res = sess.MinimizeEspresso(f, ucp.EspressoNormal, bud)
	case "espresso-strong":
		res = sess.MinimizeEspresso(f, ucp.EspressoStrong, bud)
	default:
		fatal("unknown pla solver %q", solver)
	}
	if err != nil {
		fatal("%v", err)
	}
	if !ucp.Equivalent(f, res.Cover) {
		fatal("internal error: result does not implement the function")
	}
	notice(res.Interrupted, res.StopReason)
	fmt.Printf("products: %d", res.Products)
	if res.ProvedOptimal {
		fmt.Printf(" (proved optimal)")
	} else if res.LB > 0 {
		fmt.Printf(" (lower bound %d)", int(math.Ceil(res.LB-1e-9)))
	}
	fmt.Printf("\nprimes: %d   covering rows: %d   cyclic core: %dx%d\n",
		res.Primes, res.Rows, res.CoreRows, res.CoreCols)
	fmt.Printf("time: %v (cyclic core %v)\n", res.TotalTime.Round(time.Millisecond), res.CyclicCoreTime.Round(time.Millisecond))
	sess.reportZDD(res.ZDDNodes, res.ZDDLiveNodes, res.ZDDPlainNodes, res.ZDDCollections)
	sess.reportShard(res.ShardComponents, res.ShardSpilled, res.ShardRespilled, res.ShardDegraded, res.ShardPeakBytes)
	sess.report(res.CacheHits, res.CacheMisses, res.TTHits)
	if out != "" {
		g := &ucp.PLA{Space: f.Space, F: res.Cover, D: f.D, R: f.R, Type: "fd",
			InputLabels: f.InputLabels, OutputLabels: f.OutputLabels}
		w, err := os.Create(out)
		if err != nil {
			fatal("%v", err)
		}
		defer w.Close()
		if err := g.Write(w); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("wrote %s\n", out)
	}
}

// readMatrix loads one covering instance in the matrix (or OR-Library)
// text format.
func readMatrix(path string, orlib bool) *ucp.Problem {
	r, err := os.Open(path)
	if err != nil {
		fatal("%v", err)
	}
	defer r.Close()
	var p *ucp.Problem
	if orlib {
		p, err = ucp.ReadORLibProblem(r)
	} else {
		p, err = ucp.ReadProblem(r)
	}
	if err != nil {
		fatal("%v", err)
	}
	return p
}

func runMatrix(sess *session, path, deltaPath string, orlib bool, solver string, seed int64, numIter, workers int, maxNodes int64, bounds bool, bud ucp.Budget) {
	if sess.memBudget > 0 {
		// The whole point of the budget is never materialising the
		// instance, so the modes that need it in memory are out.
		if deltaPath != "" {
			fatal("-mem-budget is incompatible with -delta")
		}
		if bounds {
			fatal("-mem-budget is incompatible with -bounds")
		}
		runStream(sess, path, orlib, ucp.SCGOptions{Seed: seed, NumIter: numIter, Workers: workers, Budget: bud,
			MemBudget: sess.memBudget, SpillDir: sess.spillDir})
		return
	}
	p := readMatrix(path, orlib)
	fmt.Printf("problem: %d rows, %d columns\n", len(p.Rows), p.NCol)
	if deltaPath != "" {
		if solver != "scg" {
			fatal("-delta needs -solver scg")
		}
		runDelta(sess, p, readMatrix(deltaPath, orlib), seed, numIter, workers, bud)
		return
	}
	if bounds {
		b := ucp.LowerBounds(p)
		fmt.Printf("bounds: MIS=%d  dual-ascent=%.3f  lagrangian=%.3f", b.MIS, b.DualAscent, b.Lagrangian)
		if b.LPExact {
			fmt.Printf("  LP=%.3f", b.LinearRelaxation)
		}
		fmt.Println()
	}
	switch solver {
	case "scg":
		res := sess.SolveSCG(p, ucp.SCGOptions{Seed: seed, NumIter: numIter, Workers: workers, Budget: bud})
		if res.Solution == nil {
			fatal("problem is infeasible")
		}
		notice(res.Interrupted, res.StopReason)
		opt := ""
		if res.ProvedOptimal {
			opt = " (proved optimal)"
		}
		fmt.Printf("scg: cost %d%s, LB %.3f, columns %v\n", res.Cost, opt, res.LB, res.Solution)
		fmt.Printf("core %dx%d, %d fixing steps, %v\n",
			res.Stats.CoreRows, res.Stats.CoreCols, res.Stats.FixSteps, res.Stats.TotalTime.Round(time.Millisecond))
		sess.reportZDD(res.Stats.ZDDNodes, res.Stats.ZDDLiveNodes, res.Stats.ZDDPlainNodes, res.Stats.ZDDCollections)
		sess.report(res.Stats.CacheHits, res.Stats.CacheMisses, 0)
	case "exact":
		res := sess.SolveExact(p, ucp.ExactOptions{MaxNodes: maxNodes, Budget: bud})
		if res.Solution == nil {
			fatal("no solution found (infeasible, or node budget exhausted)")
		}
		notice(res.Interrupted, res.StopReason)
		fmt.Printf("exact: cost %d (optimal=%v, LB %d), %d nodes, columns %v\n",
			res.Cost, res.Optimal, res.LB, res.Nodes, res.Solution)
		var hits, misses int64
		if res.CacheHit {
			hits = 1
		} else if sess.cached {
			misses = 1
		}
		sess.report(hits, misses, res.TTHits)
	case "greedy":
		sol, interrupted, err := ucp.SolveGreedyBudget(p, bud)
		if err != nil {
			fatal("%v", err)
		}
		if interrupted {
			fmt.Println("interrupted: cover completed with the cheapest-column fallback")
		}
		fmt.Printf("greedy: cost %d, columns %v\n", p.CostOf(sol), sol)
	default:
		fatal("unknown matrix solver %q", solver)
	}
}

// runStream solves a matrix/OR-Library instance through the out-of-core
// sharded driver, streaming it from disk under the -mem-budget byte
// cap; the result is bit-identical to the in-memory solve.
func runStream(sess *session, path string, orlib bool, opt ucp.SCGOptions) {
	f, err := os.Open(path)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	var res *ucp.SCGResult
	if orlib {
		res, err = ucp.SolveSCGORLib(f, opt)
	} else {
		res, err = ucp.SolveSCGMatrix(f, opt)
	}
	if err != nil {
		fatal("%v", err)
	}
	if res.Solution == nil {
		fatal("problem is infeasible")
	}
	notice(res.Interrupted, res.StopReason)
	optS := ""
	if res.ProvedOptimal {
		optS = " (proved optimal)"
	}
	fmt.Printf("scg: cost %d%s, LB %.3f, columns %v\n", res.Cost, optS, res.LB, res.Solution)
	fmt.Printf("core %dx%d, %d fixing steps, %v\n",
		res.Stats.CoreRows, res.Stats.CoreCols, res.Stats.FixSteps, res.Stats.TotalTime.Round(time.Millisecond))
	sess.reportZDD(res.Stats.ZDDNodes, res.Stats.ZDDLiveNodes, res.Stats.ZDDPlainNodes, res.Stats.ZDDCollections)
	sess.reportShard(res.Stats.ShardComponents, res.Stats.ShardSpilled,
		res.Stats.ShardRespilled, res.Stats.ShardDegraded, res.Stats.ShardPeakBytes)
}

// runDelta solves p with the state kept, reconstructs the edit to q,
// and re-solves q incrementally, reporting both results and the
// speedup.
func runDelta(sess *session, p, q *ucp.Problem, seed int64, numIter, workers int, bud ucp.Budget) {
	fmt.Printf("delta:   %d rows, %d columns\n", len(q.Rows), q.NCol)
	opt := ucp.SCGOptions{Seed: seed, NumIter: numIter, Workers: workers, Budget: bud}

	t0 := time.Now()
	base, keep := sess.SolveSCGKeep(p, opt)
	baseTime := time.Since(t0)
	if base.Solution == nil {
		fatal("base problem is infeasible")
	}
	notice(base.Interrupted, base.StopReason)
	optB := ""
	if base.ProvedOptimal {
		optB = " (proved optimal)"
	}
	fmt.Printf("base:    cost %d%s, LB %.3f, %v\n", base.Cost, optB, base.LB, baseTime.Round(time.Millisecond))

	d := ucp.DeltaBetween(p, q)
	t1 := time.Now()
	res, _ := sess.Resolve(d, keep, opt, ucp.ResolveOptions{})
	resTime := time.Since(t1)
	if res.Solution == nil {
		fatal("delta problem is infeasible")
	}
	notice(res.Interrupted, res.StopReason)
	optR := ""
	if res.ProvedOptimal {
		optR = " (proved optimal)"
	}
	fmt.Printf("resolve: cost %d%s, LB %.3f, %v", res.Cost, optR, res.LB, resTime.Round(time.Microsecond))
	if resTime > 0 && baseTime > 0 {
		fmt.Printf(" (%.1fx faster than the base solve)", float64(baseTime)/float64(resTime))
	}
	fmt.Println()
	rs := sess.ResolveStats()
	fmt.Printf("reuse:   %d blocks carried over, %d re-solved\n", rs.CompsReused, rs.CompsSolved)
	fmt.Printf("columns: %v\n", res.Solution)
}
