// Command ucpd serves the ucp solvers over HTTP+JSON: POST a covering
// problem to /solve and get back a minimum-cost cover, or an SSE
// stream of improving incumbents.  The daemon runs a bounded
// admission-controlled queue (overload answers 429 with Retry-After,
// never unbounded buffering), derives a per-request budget from the
// client's deadline clamped by server policy, schedules tenants
// fair-share over one shared cross-solve cache, and drains gracefully
// on SIGINT/SIGTERM: in-flight solves finish (forcibly cancelled past
// the drain deadline, still answering with their best feasible
// covers), queued requests get 503, then the process exits 0.  A
// second SIGINT skips the drain and exits non-zero immediately.
//
// Usage:
//
//	ucpd -addr :8080
//	curl -d '{"problem":"p 3 3\nc 2 1 3\nr 0 1\nr 1 2\nr 0 2\n"}' localhost:8080/solve
//	curl -N -d '{"problem":"...","stream":true}' localhost:8080/solve
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"syscall"
	"time"

	"ucp"
	"ucp/internal/interrupt"
	"ucp/internal/serve"
)

func main() {
	var (
		addr            = flag.String("addr", ":8080", "listen address")
		workers         = flag.Int("workers", 0, "solve concurrency (0 = GOMAXPROCS)")
		maxQueue        = flag.Int("max-queue", 256, "admitted-but-unstarted request bound")
		maxInflight     = flag.Int64("max-inflight-bytes", 64<<20, "total body bytes admitted at once")
		maxRequestBytes = flag.Int64("max-request-bytes", 8<<20, "one request's body size cap")
		defaultTimeout  = flag.Duration("default-timeout", 30*time.Second, "budget for requests that name none")
		maxTimeout      = flag.Duration("max-timeout", 2*time.Minute, "clamp on any request's budget (0 = uncapped)")
		drainTimeout    = flag.Duration("drain-timeout", 10*time.Second, "how long shutdown lets in-flight solves finish before cancelling their budgets")
		retryAfter      = flag.Duration("retry-after", time.Second, "Retry-After advertised on 429/503")
		cacheSize       = flag.Int("cache", ucp.DefaultCacheSize, "shared cross-solve cache entries (negative disables)")
		memBudget       = flag.Int64("mem-budget", 0, "route SCG covering solves through the out-of-core sharded driver under this many bytes of tracked instance memory per solve (0 = direct in-memory solves)")
		spillDir        = flag.String("spill-dir", "", "directory for sharded solves' spill files (default: the OS temp directory)")
	)
	flag.Parse()

	cfg := serve.Config{
		MaxQueue:         *maxQueue,
		MaxInflightBytes: *maxInflight,
		MaxRequestBytes:  *maxRequestBytes,
		Workers:          *workers,
		DefaultTimeout:   *defaultTimeout,
		MaxTimeout:       *maxTimeout,
		RetryAfter:       *retryAfter,
		CacheSize:        *cacheSize,
		MemBudget:        *memBudget,
		SpillDir:         *spillDir,
	}
	if *maxTimeout == 0 {
		cfg.MaxTimeout = serve.NoTimeoutCap
	}
	srv := serve.New(cfg)
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// First SIGINT/SIGTERM starts the drain; a second SIGINT exits
	// non-zero on the spot.
	ctx, stop := interrupt.Handle(context.Background(), nil, os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "ucpd: listening on %s\n", *addr)

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "ucpd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "ucpd: draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop admissions and flush the queue first, so every held request
	// is answered before the listener goes away.
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "ucpd: drain: %v\n", err)
		os.Exit(1)
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "ucpd: shutdown: %v\n", err)
		os.Exit(1)
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "ucpd: drained (served %d, rejected %d overload / %d draining)\n",
		st.Completed, st.RejectedOverload, st.RejectedDraining)
}
