// Command plagen writes the replica benchmark PLAs (or a custom
// synthetic function) to disk in Berkeley PLA format, so they can be
// fed to ucpsolve or external tools.
//
// Usage:
//
//	plagen -name test2 -o test2.pla
//	plagen -class difficult -dir ./bench
//	plagen -inputs 9 -outputs 2 -kernels 4 -kvars 5 -seed 7 -o custom.pla
//	plagen -inputs 20 -outputs 3 -cubes 60 -density 0.3 -seed 7 -o wide20.pla
//
// With -cubes the generator switches from the symmetric-kernel
// replicas to density-controlled random cubes, which scale to wide
// (20+) input spaces — the corpus the dense prime-generation front
// end is benchmarked on.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ucp/internal/benchmarks"
	"ucp/internal/pla"
)

func main() {
	var (
		name    = flag.String("name", "", "replica instance name (e.g. bench1, test2)")
		class   = flag.String("class", "", "emit a whole tier: easy | difficult | challenging")
		dir     = flag.String("dir", ".", "output directory for -class")
		out     = flag.String("o", "", "output file for -name or custom parameters")
		inputs  = flag.Int("inputs", 0, "custom: input variables")
		outputs = flag.Int("outputs", 1, "custom: output functions")
		kernels = flag.Int("kernels", 3, "custom: symmetric kernels")
		kvars   = flag.Int("kvars", 5, "custom: variables per kernel")
		dck     = flag.Int("dc", 1, "custom: don't-care cubes")
		seed    = flag.Int64("seed", 1, "custom: generator seed")
		cubes   = flag.Int("cubes", 0, "random mode: ON cubes (switches off the kernel generator)")
		density = flag.Float64("density", 0.3, "random mode: per-variable don't-care probability")
	)
	flag.Parse()

	switch {
	case *name != "":
		in, ok := findInstance(*name)
		if !ok {
			fatal("unknown instance %q", *name)
		}
		writePLA(in, orDefault(*out, *name+".pla"))
	case *class != "":
		var set []benchmarks.Instance
		switch *class {
		case "easy":
			set = benchmarks.EasyCyclic()
		case "difficult":
			set = benchmarks.DifficultCyclic()
		case "challenging":
			set = benchmarks.Challenging()
		default:
			fatal("unknown class %q", *class)
		}
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			fatal("%v", err)
		}
		for _, in := range set {
			writePLA(in, filepath.Join(*dir, in.Name+".pla"))
		}
	case *inputs > 0 && *cubes > 0:
		if *density < 0 || *density > 1 {
			fatal("density %v outside [0, 1]", *density)
		}
		f := benchmarks.RandomPLA(*seed, *inputs, *outputs, *cubes, *density, *dck)
		writeFile(f, orDefault(*out, "random.pla"))
	case *inputs > 0:
		in := benchmarks.Instance{
			Name: "custom", Inputs: *inputs, Outputs: *outputs,
			Kernels: *kernels, KernelVars: *kvars, DCKernels: *dck, Seed: *seed,
		}
		writePLA(in, orDefault(*out, "custom.pla"))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func orDefault(v, d string) string {
	if v == "" {
		return d
	}
	return v
}

func findInstance(name string) (benchmarks.Instance, bool) {
	all := append(append(benchmarks.DifficultCyclic(), benchmarks.Challenging()...), benchmarks.EasyCyclic()...)
	for _, in := range all {
		if in.Name == name {
			return in, true
		}
	}
	return benchmarks.Instance{}, false
}

func writePLA(in benchmarks.Instance, path string) {
	writeFile(in.PLA(), path)
}

func writeFile(f *pla.File, path string) {
	w, err := os.Create(path)
	if err != nil {
		fatal("%v", err)
	}
	defer w.Close()
	if err := f.Write(w); err != nil {
		fatal("%v", err)
	}
	fmt.Printf("wrote %s (%d inputs, %d outputs, %d ON cubes, %d DC cubes)\n",
		path, f.Space.Inputs(), f.Space.Outputs(), f.F.Len(), f.D.Len())
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "plagen: "+format+"\n", args...)
	os.Exit(1)
}
