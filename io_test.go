package ucp

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestReadProblem(t *testing.T) {
	src := `
# a comment
p 3 4
c 1 2 3 4
r 0 1
r 2 3   # trailing comment
r 0 3
`
	p, err := ReadProblem(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rows) != 3 || p.NCol != 4 {
		t.Fatalf("shape %dx%d", len(p.Rows), p.NCol)
	}
	if p.Cost[3] != 4 {
		t.Fatalf("costs %v", p.Cost)
	}
}

func TestReadProblemDefaultsToUnitCosts(t *testing.T) {
	p, err := ReadProblem(strings.NewReader("p 1 2\nr 0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Cost[0] != 1 || p.Cost[1] != 1 {
		t.Fatalf("costs %v", p.Cost)
	}
}

func TestReadProblemErrors(t *testing.T) {
	cases := []string{
		"r 0 1\n",           // row before p
		"p 1\n",             // malformed p
		"p 1 2\nc 1\nr 0\n", // short cost vector
		"p 1 2\nr 0 x\n",    // bad column
		"p 2 2\nr 0\n",      // row count mismatch
		"p 1 2\nq 0\n",      // unknown directive
		"p 1 2\nr 5\n",      // column out of range
		"",                  // empty
	}
	for k, src := range cases {
		if _, err := ReadProblem(strings.NewReader(src)); err == nil {
			t.Fatalf("case %d: error expected for %q", k, src)
		}
	}
}

func TestProblemRoundTrip(t *testing.T) {
	p, err := NewProblem([][]int{{0, 2}, {1}, {0, 1, 2}}, 3, []int{2, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteProblem(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := ReadProblem(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rows) != len(p.Rows) || q.NCol != p.NCol {
		t.Fatal("shape changed")
	}
	for i := range p.Rows {
		if len(p.Rows[i]) != len(q.Rows[i]) {
			t.Fatalf("row %d changed", i)
		}
		for k := range p.Rows[i] {
			if p.Rows[i][k] != q.Rows[i][k] {
				t.Fatalf("row %d changed", i)
			}
		}
	}
	for j := range p.Cost {
		if p.Cost[j] != q.Cost[j] {
			t.Fatal("costs changed")
		}
	}
}

func TestWriteProblemOmitsUniformCosts(t *testing.T) {
	p, _ := NewProblem([][]int{{0}}, 2, nil)
	var buf bytes.Buffer
	if err := WriteProblem(&buf, p); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "c ") {
		t.Fatalf("uniform costs should be omitted:\n%s", buf.String())
	}
}

// TestReadORLibProblemErrorLines: OR-Library parse failures carry the
// 1-based line number they were detected on and wrap ErrMalformedInput.
func TestReadORLibProblemErrorLines(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"bad cost", "2 2\n1 x\n", "line 2"},
		{"column out of range", "1 2\n1 1\n1 5\n", "line 3"},
		{"negative degree", "1 2\n1 1\n-3\n", "line 3"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadORLibProblem(strings.NewReader(tc.in))
			if err == nil {
				t.Fatal("input unexpectedly accepted")
			}
			if !errors.Is(err, ErrMalformedInput) {
				t.Fatalf("error %v does not wrap ErrMalformedInput", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not carry %q", err, tc.want)
			}
		})
	}
}
