package ucp

import (
	"errors"
	"strconv"
	"strings"
	"testing"
)

// The error taxonomy contract: every failure of the public API is
// classifiable with errors.Is against the exported sentinels, so a
// server can map it to a status code without string matching.

func TestMalformedInputSentinel(t *testing.T) {
	cases := []struct {
		name string
		err  func() error
	}{
		{"matrix bad p line", func() error {
			_, err := ReadProblem(strings.NewReader("p x y\n"))
			return err
		}},
		{"matrix missing p line", func() error {
			_, err := ReadProblem(strings.NewReader("r 0 1\n"))
			return err
		}},
		{"matrix row count mismatch", func() error {
			_, err := ReadProblem(strings.NewReader("p 2 2\nr 0\n"))
			return err
		}},
		{"orlib negative dims", func() error {
			_, err := ReadORLibProblem(strings.NewReader("-1 -1\n"))
			return err
		}},
		{"pla bad output field", func() error {
			_, err := ParsePLA(strings.NewReader(".i 2\n.o 1\n11 z\n"))
			return err
		}},
		{"NewProblem column out of range", func() error {
			_, err := NewProblem([][]int{{5}}, 2, nil)
			return err
		}},
		{"NewProblem negative cost", func() error {
			_, err := NewProblem([][]int{{0}}, 1, []int{-1})
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.err()
			if err == nil {
				t.Fatal("input unexpectedly accepted")
			}
			if !errors.Is(err, ErrMalformedInput) {
				t.Fatalf("error %v does not wrap ErrMalformedInput", err)
			}
			if errors.Is(err, ErrInfeasible) || errors.Is(err, ErrBudgetExceeded) {
				t.Fatalf("error %v matches more than one sentinel", err)
			}
		})
	}
}

func TestCoveringLimitSentinel(t *testing.T) {
	n := MaxCoveringInputs + 1
	src := ".i " + strconv.Itoa(n) + "\n.o 1\n" + strings.Repeat("-", n) + " 1\n.e\n"
	f, err := ParsePLA(strings.NewReader(src))
	if err != nil {
		t.Fatalf("a wide PLA is well-formed, parse failed: %v", err)
	}
	_, _, cerr := BuildCovering(f, UnitCost)
	if !errors.Is(cerr, ErrCoveringLimit) {
		t.Fatalf("BuildCovering over %d inputs: %v, want ErrCoveringLimit", n, cerr)
	}
	if errors.Is(cerr, ErrMalformedInput) {
		t.Fatalf("size limit misclassified as malformed input: %v", cerr)
	}
	if _, merr := MinimizeSCG(f, SCGOptions{}); !errors.Is(merr, ErrCoveringLimit) {
		t.Fatalf("MinimizeSCG over %d inputs: %v, want ErrCoveringLimit", n, merr)
	}
}

func TestInfeasibleSentinel(t *testing.T) {
	p, err := NewProblem([][]int{{0}, {}}, 1, nil)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	_, gerr := SolveGreedy(p)
	if !errors.Is(gerr, ErrInfeasible) {
		t.Fatalf("greedy on uncoverable row: %v, want ErrInfeasible", gerr)
	}
	if errors.Is(gerr, ErrMalformedInput) {
		t.Fatalf("infeasibility misclassified as malformed input: %v", gerr)
	}
}

func TestBudgetExceededSentinel(t *testing.T) {
	for _, r := range []StopReason{StopDeadline, StopCancelled, StopSearchCap, StopIterCap} {
		if err := r.Err(); !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("StopReason(%v).Err() = %v, does not wrap ErrBudgetExceeded", r, err)
		}
	}
	if err := StopNone.Err(); err != nil {
		t.Fatalf("StopNone.Err() = %v, want nil", err)
	}
}
