package ucp

import "ucp/internal/solvecache"

// SolverOptions configures a Solver session.
type SolverOptions struct {
	// Cache is the session's cross-solve memoization cache, threaded
	// into every solve the Solver runs (unless the per-solve options
	// already carry one).  Nil disables caching.
	Cache *Cache
	// ArenaSize bounds the ancestor arena — the LRU of retained solve
	// states Resolve consults when no parent handle is passed.  0
	// selects the default (64 entries); negative disables the arena.
	ArenaSize int
}

// defaultArenaSize is the ancestor arena's capacity when
// SolverOptions.ArenaSize is zero.
const defaultArenaSize = 64

// Solver is a session handle over the package's solvers: every entry
// point run through one Solver shares one cross-solve Cache, so an
// iterated minimisation loop — or a server answering many users —
// pays for each distinct covering problem once.  Results served from
// the cache are bit-identical to computed ones (Solution, Cost, LB,
// optimality); only the cache counters and timings differ.
//
// A Solver is safe for concurrent use; concurrent identical solves
// are deduplicated behind a single computation.
type Solver struct {
	cache      *Cache
	arena      *solvecache.Arena
	resolveCtr resolveCounters
}

// NewSolver builds a session handle.  A zero SolverOptions gives an
// uncached Solver with a default-sized ancestor arena.
func NewSolver(opt SolverOptions) *Solver {
	size := opt.ArenaSize
	if size == 0 {
		size = defaultArenaSize
	}
	return &Solver{cache: opt.Cache, arena: solvecache.NewArena(size)}
}

// CacheStats snapshots the session cache's counters (zero without a
// cache).
func (s *Solver) CacheStats() CacheStats {
	return s.cache.Stats()
}

// SolveSCG runs the paper's heuristic through the session cache.
func (s *Solver) SolveSCG(p *Problem, opt SCGOptions) *SCGResult {
	if opt.Cache == nil {
		opt.Cache = s.cache
	}
	return SolveSCG(p, opt)
}

// SolveExact runs the exact branch-and-bound solver through the
// session cache.
func (s *Solver) SolveExact(p *Problem, opt ExactOptions) *ExactResult {
	if opt.Cache == nil {
		opt.Cache = s.cache
	}
	return SolveExact(p, opt)
}

// MinimizeSCG minimises a PLA with the paper's pipeline, serving the
// covering solve from the session cache when it has seen the problem
// (or a row/column permutation of it) before.
func (s *Solver) MinimizeSCG(f *PLA, opt SCGOptions) (*TwoLevelResult, error) {
	if opt.Cache == nil {
		opt.Cache = s.cache
	}
	return MinimizeSCG(f, opt)
}

// MinimizeExact minimises a PLA exactly, serving the covering solve
// from the session cache.
func (s *Solver) MinimizeExact(f *PLA, opt ExactOptions) (*TwoLevelResult, error) {
	if opt.Cache == nil {
		opt.Cache = s.cache
	}
	return MinimizeExact(f, opt)
}

// MinimizeEspresso runs the Espresso-style comparison minimiser with
// the whole minimisation memoized in the session cache (keyed by the
// input cover, don't-care set and mode).
func (s *Solver) MinimizeEspresso(f *PLA, mode EspressoMode, b Budget) *TwoLevelResult {
	return minimizeEspresso(f, mode, b, s.cache)
}
