package ucp

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"ucp/internal/benchmarks"
)

// permuteCovering relabels the columns of p by colPerm (old id → new
// id) and shuffles its rows: an isomorphic instance under different
// labels, for exercising the cache's canonical keying.
func permuteCovering(t *testing.T, p *Problem, colPerm []int, rng *rand.Rand) *Problem {
	t.Helper()
	rows := make([][]int, len(p.Rows))
	for i, r := range p.Rows {
		nr := make([]int, len(r))
		for k, j := range r {
			nr[k] = colPerm[j]
		}
		rows[i] = nr
	}
	rng.Shuffle(len(rows), func(a, b int) { rows[a], rows[b] = rows[b], rows[a] })
	cost := make([]int, p.NCol)
	for j, c := range p.Cost {
		cost[colPerm[j]] = c
	}
	q, err := NewProblem(rows, p.NCol, cost)
	if err != nil {
		t.Fatalf("permuted problem: %v", err)
	}
	return q
}

// scgComparable strips the fields exempt from the bit-identity
// contract: timings, and the cache counters that by construction
// differ between a computed and a served result.
func scgComparable(r *SCGResult) SCGResult {
	c := *r
	c.Stats.CyclicCoreTime = 0
	c.Stats.TotalTime = 0
	c.Stats.CacheHits = 0
	c.Stats.CacheMisses = 0
	return c
}

// TestCacheDifferentialSCG checks the heart of the memoization
// contract: for every worker count, a cache-served solve is
// bit-identical (Solution, Cost, LB, ProvedOptimal, Stats) to the
// uncached solve, both on the first (miss) and second (hit) encounter.
func TestCacheDifferentialSCG(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 12; trial++ {
		p := benchmarks.RandomCovering(rng.Int63(), 20+rng.Intn(30), 15+rng.Intn(25), 0.12, 4)
		for _, workers := range []int{1, 2, 4, 8} {
			opt := SCGOptions{Seed: int64(trial + 1), NumIter: 2, Workers: workers}
			ref := SolveSCG(p, opt)

			cached := opt
			cached.Cache = NewCache(64, 0) // admit everything
			first := SolveSCG(p, cached)
			second := SolveSCG(p, cached)

			if first.Stats.CacheMisses != 1 || first.Stats.CacheHits != 0 {
				t.Fatalf("trial %d w=%d: first solve hits=%d misses=%d",
					trial, workers, first.Stats.CacheHits, first.Stats.CacheMisses)
			}
			if second.Stats.CacheHits != 1 {
				t.Fatalf("trial %d w=%d: second solve not served from cache", trial, workers)
			}
			want := scgComparable(ref)
			for name, got := range map[string]*SCGResult{"miss": first, "hit": second} {
				if g := scgComparable(got); !equalSCG(&g, &want) {
					t.Fatalf("trial %d w=%d: %s result differs from uncached:\n got %+v\nwant %+v",
						trial, workers, name, g, want)
				}
			}
		}
	}
}

func equalSCG(a, b *SCGResult) bool {
	if a.Cost != b.Cost || a.LB != b.LB || a.ProvedOptimal != b.ProvedOptimal ||
		a.Interrupted != b.Interrupted || a.StopReason != b.StopReason || a.Stats != b.Stats {
		return false
	}
	if len(a.Solution) != len(b.Solution) {
		return false
	}
	for i := range a.Solution {
		if a.Solution[i] != b.Solution[i] {
			return false
		}
	}
	return true
}

// TestCacheDifferentialExact does the same for the exact solver, and
// additionally checks that a column-permuted, row-shuffled relabeling
// of a cached instance is served a translated solution that covers the
// permuted matrix at the same (optimal) cost.
func TestCacheDifferentialExact(t *testing.T) {
	rng := rand.New(rand.NewSource(515))
	for trial := 0; trial < 12; trial++ {
		p := benchmarks.RandomCovering(rng.Int63(), 12+rng.Intn(12), 10+rng.Intn(10), 0.2, 3)
		ref := SolveExact(p, ExactOptions{})

		cache := NewCache(64, 0)
		first := SolveExact(p, ExactOptions{Cache: cache})
		second := SolveExact(p, ExactOptions{Cache: cache})
		if first.CacheHit {
			t.Fatalf("trial %d: first solve claims a cache hit", trial)
		}
		if !second.CacheHit {
			t.Fatalf("trial %d: second solve not served from cache", trial)
		}
		for name, got := range map[string]*ExactResult{"miss": first, "hit": second} {
			if got.Cost != ref.Cost || got.Optimal != ref.Optimal || got.LB != ref.LB {
				t.Fatalf("trial %d: %s result differs: got cost %d opt %v lb %d, want %d %v %d",
					trial, name, got.Cost, got.Optimal, got.LB, ref.Cost, ref.Optimal, ref.LB)
			}
		}
		if ref.Solution != nil && !equalInts(first.Solution, ref.Solution) {
			t.Fatalf("trial %d: miss solution differs from uncached", trial)
		}

		// An isomorphic relabeling probes the same canonical key; the
		// served solution must be translated into the new labels.
		q := permuteCovering(t, p, rng.Perm(p.NCol), rng)
		pr := SolveExact(q, ExactOptions{Cache: cache})
		if pr.Solution == nil {
			t.Fatalf("trial %d: permuted solve found no cover", trial)
		}
		if !q.IsCover(pr.Solution) {
			t.Fatalf("trial %d: permuted-instance result is not a cover of the permuted matrix: %v",
				trial, pr.Solution)
		}
		if pr.Cost != ref.Cost {
			t.Fatalf("trial %d: permuted optimum %d != original optimum %d", trial, pr.Cost, ref.Cost)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCacheLeaderCancellation aims a budget cancellation at a
// singleflight leader while concurrent waiters queue on the same key:
// the waiters must neither deadlock nor inherit the interrupted
// result — they compute for themselves — and the cache must not be
// poisoned for later solves.  Run under -race this also exercises the
// cache's cross-goroutine publication.
func TestCacheLeaderCancellation(t *testing.T) {
	p := benchmarks.RandomCovering(77, 160, 140, 0.06, 5)
	ref := SolveSCG(p, SCGOptions{Seed: 9, NumIter: 3})
	cache := NewCache(64, 0)

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	results := make([]*SCGResult, 5)

	// The leader solves under the doomed context; cancel fires shortly
	// after the goroutines start.  Whether the cancellation lands
	// mid-solve or the leader finishes first, every outcome below must
	// hold (the race just selects which code path is exercised).
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0] = SolveSCG(p, SCGOptions{Seed: 9, NumIter: 3, Cache: cache,
			Budget: Budget{Context: ctx}})
	}()
	for i := 1; i < 5; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = SolveSCG(p, SCGOptions{Seed: 9, NumIter: 3, Cache: cache})
		}(i)
	}
	time.Sleep(2 * time.Millisecond)
	cancel()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("cancelled singleflight leader deadlocked its waiters")
	}

	for i, r := range results {
		if r == nil || r.Solution == nil {
			t.Fatalf("goroutine %d: no result", i)
		}
		if !p.IsCover(r.Solution) {
			t.Fatalf("goroutine %d: infeasible solution", i)
		}
		if i > 0 && !r.Interrupted && r.Cost != ref.Cost {
			// Waiters run without a budget: their results must match
			// the uncached reference bit-for-bit.
			t.Fatalf("goroutine %d: cost %d != reference %d", i, r.Cost, ref.Cost)
		}
	}

	// The cache must hold either nothing or the completed result —
	// never the interrupted one.  A fresh solve must match the
	// reference exactly.
	after := SolveSCG(p, SCGOptions{Seed: 9, NumIter: 3, Cache: cache})
	if after.Interrupted {
		t.Fatal("cache served an interrupted result")
	}
	if after.Cost != ref.Cost || !equalInts(after.Solution, ref.Solution) {
		t.Fatalf("post-cancellation solve differs: cost %d want %d", after.Cost, ref.Cost)
	}
}

// TestSolverSessionThreading checks the public Solver handle threads
// its cache into each entry point.
func TestSolverSessionThreading(t *testing.T) {
	p := benchmarks.RandomCovering(31, 25, 20, 0.15, 3)
	s := NewSolver(SolverOptions{Cache: NewCache(32, 0)})
	s.SolveSCG(p, SCGOptions{Seed: 1})
	s.SolveSCG(p, SCGOptions{Seed: 1})
	s.SolveExact(p, ExactOptions{})
	s.SolveExact(p, ExactOptions{})
	cs := s.CacheStats()
	if cs.Hits < 2 || cs.Entries < 2 {
		t.Fatalf("session cache not threaded: %+v", cs)
	}
	// An uncached Solver is the package-level behaviour.
	u := NewSolver(SolverOptions{})
	if got := u.CacheStats(); got != (CacheStats{}) {
		t.Fatalf("uncached solver reports stats %+v", got)
	}
	r := u.SolveSCG(p, SCGOptions{Seed: 1})
	if r.Stats.CacheHits != 0 || r.Stats.CacheMisses != 0 {
		t.Fatal("uncached solver touched a cache")
	}
}
