package ucp

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"ucp/internal/benchmarks"
)

const samplePLA = `
.i 4
.o 2
.p 6
1--0 10
-11- 11
0--1 01
11-- 10
--00 01
0110 11
.e
`

func TestEndToEndMinimisation(t *testing.T) {
	f, err := ParsePLA(strings.NewReader(samplePLA))
	if err != nil {
		t.Fatal(err)
	}
	sg, err := MinimizeSCG(f, SCGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !Equivalent(f, sg.Cover) {
		t.Fatal("SCG cover does not implement the function")
	}
	ex, err := MinimizeExact(f, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !Equivalent(f, ex.Cover) {
		t.Fatal("exact cover does not implement the function")
	}
	if !ex.ProvedOptimal {
		t.Fatal("exact solver did not certify")
	}
	if sg.Products < ex.Products {
		t.Fatalf("SCG %d below exact optimum %d", sg.Products, ex.Products)
	}
	if sg.ProvedOptimal && sg.Products != ex.Products {
		t.Fatalf("SCG claimed optimality at %d; optimum is %d", sg.Products, ex.Products)
	}
	esp := MinimizeEspresso(f, EspressoNormal)
	if !Equivalent(f, esp.Cover) {
		t.Fatal("espresso cover does not implement the function")
	}
	if esp.Products < ex.Products {
		t.Fatalf("espresso %d below optimum %d", esp.Products, ex.Products)
	}
	str := MinimizeEspresso(f, EspressoStrong)
	if str.Products > esp.Products {
		t.Fatal("strong mode worse than normal")
	}
}

// The committed wide-corpus example must minimise end to end under the
// default (unlimited) budget: 20 inputs is far past what the covering
// pipeline reached before the streaming construction, and the dense
// front end must agree with the solver on a proved optimum.
func TestWideInstanceEndToEnd(t *testing.T) {
	f, err := ParsePLAFile("examples/wide20.pla")
	if err != nil {
		t.Fatal(err)
	}
	if n := f.Space.Inputs(); n < 20 {
		t.Fatalf("example has %d inputs, want >= 20", n)
	}
	if o := f.Space.Outputs(); o < 2 {
		t.Fatalf("example has %d outputs, want multi-output", o)
	}
	res, err := MinimizeSCG(f, SCGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupted {
		t.Fatal("default budget run reported an interruption")
	}
	if res.Products <= 0 || res.Cover.Len() != res.Products {
		t.Fatalf("products=%d cover=%d", res.Products, res.Cover.Len())
	}
	// Full equivalence enumerates 2^20 minterms per output; spot-check
	// the containment direction cube-wise instead: every ON cube must
	// be covered, and the cover must stay inside F ∪ D.
	if !res.Cover.ContainsCover(f.F) {
		t.Fatal("cover misses part of the ON-set")
	}
	on := f.F.Clone()
	for _, c := range f.DontCares().Cubes {
		on.Add(c)
	}
	if !on.ContainsCover(res.Cover) {
		t.Fatal("cover leaves F ∪ D")
	}
}

func TestCoveringAPI(t *testing.T) {
	p, err := NewProblem([][]int{{0, 1}, {1, 2}, {0, 2}}, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := SolveSCG(p, SCGOptions{})
	if res.Cost != 2 {
		t.Fatalf("triangle optimum = %d, want 2", res.Cost)
	}
	ex := SolveExact(p, ExactOptions{})
	if ex.Cost != 2 || !ex.Optimal {
		t.Fatalf("exact: %+v", ex)
	}
	g, gerr := SolveGreedy(p)
	if gerr != nil || !p.IsCover(g) {
		t.Fatalf("greedy failed: %v", gerr)
	}
	red := ReduceProblem(p)
	if len(red.Core.Rows) != 3 {
		t.Fatalf("triangle should be its own cyclic core, got %d rows", len(red.Core.Rows))
	}
}

func TestLowerBoundsOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 60; trial++ {
		p := benchmarks.RandomCovering(rng.Int63(), 3+rng.Intn(8), 3+rng.Intn(8), 0.35, 3)
		b := LowerBounds(p)
		if !b.LPExact {
			t.Fatal("LP skipped on a tiny instance")
		}
		if float64(b.MIS) > b.DualAscent+1e-6 {
			t.Fatalf("trial %d: MIS %d > DA %v", trial, b.MIS, b.DualAscent)
		}
		if b.DualAscent > b.LinearRelaxation+1e-6 {
			t.Fatalf("trial %d: DA %v > LR %v", trial, b.DualAscent, b.LinearRelaxation)
		}
		if b.Lagrangian > b.LinearRelaxation+1e-6 {
			t.Fatalf("trial %d: Lagr %v > LR %v", trial, b.Lagrangian, b.LinearRelaxation)
		}
	}
}

func TestFigure1Bounds(t *testing.T) {
	b := LowerBounds(benchmarks.Figure1())
	if b.MIS != 1 {
		t.Fatalf("MIS = %d, want 1", b.MIS)
	}
	if math.Abs(b.DualAscent-2) > 1e-9 {
		t.Fatalf("DA = %v, want 2", b.DualAscent)
	}
	if math.Abs(b.LinearRelaxation-2.5) > 1e-6 {
		t.Fatalf("LR = %v, want 2.5", b.LinearRelaxation)
	}
	opt := SolveExact(benchmarks.Figure1(), ExactOptions{})
	if opt.Cost != 3 {
		t.Fatalf("integer optimum = %d, want 3 = ⌈2.5⌉", opt.Cost)
	}
	// Uniform-cost variant: MIS = DA = 1, LR = 5/3 (→ 2 rounded).
	u := LowerBounds(benchmarks.Figure1Uniform())
	if u.MIS != 1 || math.Abs(u.DualAscent-1) > 1e-9 {
		t.Fatalf("uniform MIS/DA = %d/%v, want 1/1", u.MIS, u.DualAscent)
	}
	if math.Abs(u.LinearRelaxation-5.0/3.0) > 1e-6 {
		t.Fatalf("uniform LR = %v, want 5/3", u.LinearRelaxation)
	}
}

func TestLowerBoundsSkipsHugeLP(t *testing.T) {
	p := benchmarks.CyclicCovering(7, 400, 300, 3)
	b := LowerBounds(p)
	if b.LPExact {
		t.Fatal("dense LP should be skipped above LPLimit")
	}
	if !math.IsNaN(b.LinearRelaxation) {
		t.Fatal("skipped LP should be NaN")
	}
	if b.DualAscent < float64(b.MIS)-1e-6 {
		t.Fatal("bound ordering violated")
	}
}

func TestBuildCoveringExposesFormulation(t *testing.T) {
	f, err := ParsePLA(strings.NewReader(samplePLA))
	if err != nil {
		t.Fatal(err)
	}
	prob, prs, err := BuildCovering(f, UnitCost)
	if err != nil {
		t.Fatal(err)
	}
	if prs.Len() == 0 || len(prob.Rows) == 0 {
		t.Fatal("empty formulation")
	}
	if prob.NCol != prs.Len() {
		t.Fatal("columns out of sync with primes")
	}
}

func TestLiteralCostModelPrefersLargerCubes(t *testing.T) {
	f, err := ParsePLA(strings.NewReader(samplePLA))
	if err != nil {
		t.Fatal(err)
	}
	prob, _, err := BuildCovering(f, LiteralCost)
	if err != nil {
		t.Fatal(err)
	}
	res := SolveExact(prob, ExactOptions{})
	if res.Solution == nil || !res.Optimal {
		t.Fatal("literal-cost covering unsolved")
	}
}
