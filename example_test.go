package ucp_test

import (
	"fmt"
	"strings"

	"ucp"
)

// The odd-cycle covering problem: three rows that pairwise share a
// column need two columns, and the heuristic certifies it.
func ExampleSolveSCG() {
	p, _ := ucp.NewProblem([][]int{{0, 1}, {1, 2}, {0, 2}}, 3, nil)
	res := ucp.SolveSCG(p, ucp.SCGOptions{})
	fmt.Println(res.Cost, res.ProvedOptimal)
	// Output: 2 true
}

// The paper's Figure 1 witness: the three bound families in strictly
// increasing strength.
func ExampleLowerBounds() {
	p, _ := ucp.NewProblem(
		[][]int{{0, 3, 4}, {1, 4}, {2, 4}, {1, 2, 3}},
		5,
		[]int{1, 1, 1, 2, 2},
	)
	b := ucp.LowerBounds(p)
	fmt.Printf("MIS=%d DA=%g LP=%g\n", b.MIS, b.DualAscent, b.LinearRelaxation)
	// Output: MIS=1 DA=2 LP=2.5
}

// Minimising a tiny PLA exactly: xy + xy' collapses to the single
// product x.
func ExampleMinimizeExact() {
	f, _ := ucp.ParsePLA(strings.NewReader(".i 2\n.o 1\n11 1\n10 1\n"))
	res, _ := ucp.MinimizeExact(f, ucp.ExactOptions{})
	fmt.Println(res.Products, res.ProvedOptimal)
	fmt.Print(res.Cover)
	// Output:
	// 1 true
	// 1- 1
}

// A binate clause set with an exclusion: at least one of {0,1}, and
// not both 0 and 2.
func ExampleSolveBinate() {
	p, _ := ucp.NewBinateProblem([][]ucp.BinateLit{
		{{Col: 0}, {Col: 1}},
		{{Col: 2}},
		{{Col: 0, Neg: true}, {Col: 2, Neg: true}},
	}, 3, []int{1, 2, 1})
	res := ucp.SolveBinate(p, ucp.BinateOptions{})
	fmt.Println(res.Feasible, res.Cost, res.Solution)
	// Output: true 3 [1 2]
}
