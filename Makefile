# Development targets for the ucp reproduction.

GO ?= go

# The hot-substrate microbenches tracked across PRs (see
# BENCH_pr10.json for the committed baseline and DESIGN.md for
# interpretation).  The front-end benches live in ./internal/primes
# (they need the unexported covering reference oracle) and get their
# own pattern.
SUBSTRATE_BENCH = BenchmarkZDDReductions$$|BenchmarkSubgradient$$|BenchmarkSCGCore$$|BenchmarkSCGPortfolio$$|BenchmarkReduceFixpoint$$|BenchmarkZDDGC$$|BenchmarkZDDChainNodes$$|BenchmarkSolveCached$$|BenchmarkBnBTransposition$$|BenchmarkDeltaResolve$$|BenchmarkShardedSolve$$
FRONTEND_BENCH = BenchmarkPrimeGen$$|BenchmarkBuildCovering$$

.PHONY: build test check bench-diff fuzz bench bench-all serve-smoke shard-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-merge gate: vet, the parallel-reduction differential
# tests under the race detector (fast fail on a determinism break in
# the sharded dominance passes), the full suite under -race (which also
# exercises the budget/cancellation paths, the restart portfolio and
# the pooled-scratch reuse with real concurrency), and the bench-diff
# regression gate on the substrate benches.
check:
	$(GO) vet ./...
	$(GO) test -race -run 'TestReduceWorkers|TestParShard|TestReplayReduceMatchesCold' ./internal/matrix
	$(GO) test -race -run 'TestResolveMatchesCold' ./internal/scg
	$(GO) test -race ./...
	$(MAKE) serve-smoke
	$(MAKE) shard-smoke
	$(MAKE) bench-diff

# serve-smoke boots ucpd, drives it with ucpload (unary and streaming),
# asserts zero server-side failures and a clean SIGTERM drain.
serve-smoke:
	sh scripts/serve_smoke.sh

# shard-smoke generates an instance >4x the memory budget with scpgen
# and solves it out-of-core through `ucpsolve -mem-budget` under a
# GOMEMLIMIT envelope, asserting components spilled and the tracked
# peak stayed under budget.
shard-smoke:
	sh scripts/shard_smoke.sh

# bench-diff reruns the substrate benches and fails on regression
# against the committed baseline: >75% ns/op growth or >0.5% allocs/op
# growth — the timing allowance spans the container's load windows and
# the alloc allowance absorbs the parallel portfolio's
# scheduler-dependent pool jitter (see cmd/benchfmt).
bench-diff:
	{ $(GO) test -run '^$$' -bench '$(SUBSTRATE_BENCH)' -benchtime 1x -count 5 . ; \
	  $(GO) test -run '^$$' -bench '$(FRONTEND_BENCH)' -benchtime 1x -count 3 ./internal/primes ; } \
	| $(GO) run ./cmd/benchfmt -against BENCH_pr10.json

# fuzz runs every fuzz target for 30 seconds each (the robustness
# acceptance bar: no panic reachable through the public API, and the
# signature prune exactly matches the exact subset test).
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzReadProblem$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzParsePLA$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzReadORLibProblem$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzSolveParsedProblem$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzMinimizeParsedPLA$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzSignatureSubset$$' -fuzztime $(FUZZTIME) ./internal/matrix
	$(GO) test -run '^$$' -fuzz '^FuzzDeltaReplay$$' -fuzztime $(FUZZTIME) ./internal/matrix
	$(GO) test -run '^$$' -fuzz '^FuzzCanonFingerprint$$' -fuzztime $(FUZZTIME) ./internal/canon
	$(GO) test -run '^$$' -fuzz '^FuzzServeRequest$$' -fuzztime $(FUZZTIME) ./internal/serve
	$(GO) test -run '^$$' -fuzz '^FuzzPrimesDense$$' -fuzztime $(FUZZTIME) ./internal/primes
	$(GO) test -run '^$$' -fuzz '^FuzzZDDChain$$' -fuzztime $(FUZZTIME) ./internal/zdd

# bench measures the hot substrates (5 repetitions each, plus the
# portfolio and the sharded reduction fixpoint under -cpu 1,2,4,8) and
# records the results in BENCH_pr10.json; commit the refreshed file
# when a change moves them.
bench:
	{ $(GO) test -run '^$$' -bench '$(SUBSTRATE_BENCH)' -benchtime 1x -count 5 . ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkSCGPortfolio$$|BenchmarkReduceFixpoint$$' -benchtime 1x -count 3 -cpu 1,2,4,8 . ; \
	  $(GO) test -run '^$$' -bench '$(FRONTEND_BENCH)' -benchtime 1x -count 3 ./internal/primes ; } \
	| $(GO) run ./cmd/benchfmt -o BENCH_pr10.json \
	  -note "PR10: out-of-core component-sharded solving. New in this baseline: ShardedSolve on a 60-component round-robin instance (the streaming partitioner's worst case) — direct is the unsharded scg.Solve, inram runs the sharded driver with every component resident (pure streaming/partitioning overhead, ~5% over direct), spill forces most components through the spill file (spilled/op says how many; expect ~45-50 of 60). All three are bit-identical by the driver's contract, checked per iteration. The sharded variants pay one frame encode/decode per row plus the union-find, so their allocs/op sit well above direct; that cost buys a tracked-byte peak under any budget (see make shard-smoke). All pre-existing substrates are unchanged and should match the PR9 mins within noise. Container timings are noisy (+/-10% between windows); allocs/op is near-exact (portfolio pool jitter only) and part of the regression gate."

# bench-all runs every benchmark once: the paper tables, the ablations
# and the substrates.
bench-all:
	$(GO) test -run '^$$' -bench . -benchtime 1x .
