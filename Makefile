# Development targets for the ucp reproduction.

GO ?= go

.PHONY: build test check fuzz bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-merge gate: vet plus the full suite under the race
# detector, which exercises the budget/cancellation paths with a
# concurrent context in play.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

# fuzz runs every fuzz target for 30 seconds each (the robustness
# acceptance bar: no panic reachable through the public API).
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzReadProblem$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzParsePLA$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzReadORLibProblem$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzSolveParsedProblem$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzMinimizeParsedPLA$$' -fuzztime $(FUZZTIME) .

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .
