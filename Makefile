# Development targets for the ucp reproduction.

GO ?= go

# The hot-substrate microbenches tracked across PRs (see BENCH_pr7.json
# for the committed baseline and DESIGN.md for interpretation).  The
# front-end benches live in ./internal/primes (they need the unexported
# covering reference oracle) and get their own pattern.
SUBSTRATE_BENCH = BenchmarkZDDReductions$$|BenchmarkSubgradient$$|BenchmarkSCGCore$$|BenchmarkSCGPortfolio$$|BenchmarkReduceFixpoint$$|BenchmarkZDDGC$$|BenchmarkSolveCached$$|BenchmarkBnBTransposition$$
FRONTEND_BENCH = BenchmarkPrimeGen$$|BenchmarkBuildCovering$$

.PHONY: build test check bench-diff fuzz bench bench-all serve-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-merge gate: vet, the parallel-reduction differential
# tests under the race detector (fast fail on a determinism break in
# the sharded dominance passes), the full suite under -race (which also
# exercises the budget/cancellation paths, the restart portfolio and
# the pooled-scratch reuse with real concurrency), and the bench-diff
# regression gate on the substrate benches.
check:
	$(GO) vet ./...
	$(GO) test -race -run 'TestReduceWorkers|TestParShard' ./internal/matrix
	$(GO) test -race ./...
	$(MAKE) serve-smoke
	$(MAKE) bench-diff

# serve-smoke boots ucpd, drives it with ucpload (unary and streaming),
# asserts zero server-side failures and a clean SIGTERM drain.
serve-smoke:
	sh scripts/serve_smoke.sh

# bench-diff reruns the substrate benches and fails on regression
# against the committed baseline: >25% ns/op growth or >0.5% allocs/op
# growth — the allowance absorbs the parallel portfolio's
# scheduler-dependent pool jitter (see cmd/benchfmt).
bench-diff:
	{ $(GO) test -run '^$$' -bench '$(SUBSTRATE_BENCH)' -benchtime 1x -count 5 . ; \
	  $(GO) test -run '^$$' -bench '$(FRONTEND_BENCH)' -benchtime 1x -count 3 ./internal/primes ; } \
	| $(GO) run ./cmd/benchfmt -against BENCH_pr7.json

# fuzz runs every fuzz target for 30 seconds each (the robustness
# acceptance bar: no panic reachable through the public API, and the
# signature prune exactly matches the exact subset test).
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzReadProblem$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzParsePLA$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzReadORLibProblem$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzSolveParsedProblem$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzMinimizeParsedPLA$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzSignatureSubset$$' -fuzztime $(FUZZTIME) ./internal/matrix
	$(GO) test -run '^$$' -fuzz '^FuzzCanonFingerprint$$' -fuzztime $(FUZZTIME) ./internal/canon
	$(GO) test -run '^$$' -fuzz '^FuzzServeRequest$$' -fuzztime $(FUZZTIME) ./internal/serve
	$(GO) test -run '^$$' -fuzz '^FuzzPrimesDense$$' -fuzztime $(FUZZTIME) ./internal/primes

# bench measures the hot substrates (5 repetitions each, plus the
# portfolio and the sharded reduction fixpoint under -cpu 1,2,4,8) and
# records the results in BENCH_pr7.json; commit the refreshed file when
# a change moves them.
bench:
	{ $(GO) test -run '^$$' -bench '$(SUBSTRATE_BENCH)' -benchtime 1x -count 5 . ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkSCGPortfolio$$|BenchmarkReduceFixpoint$$' -benchtime 1x -count 3 -cpu 1,2,4,8 . ; \
	  $(GO) test -run '^$$' -bench '$(FRONTEND_BENCH)' -benchtime 1x -count 3 ./internal/primes ; } \
	| $(GO) run ./cmd/benchfmt -o BENCH_pr7.json \
	  -note "PR7: dense bit-slice prime generation and streaming covering construction. New in this baseline: PrimeGen/dense vs PrimeGen/consensus on a 16-input 2-output 100-cube instance (the ns/op ratio is the bit-slice speedup, expected >=5x; the consensus side is the quadratic work-set scan the dense sweep replaces) and BuildCovering/stream vs BuildCovering/reference on a 20-input 3-output instance (~25k rows; stream avoids the per-minterm cube allocations and map lookups of the reference oracle). SolveCached/BnBTransposition/SCGCore et al are unchanged substrates and should match the PR5 mins within noise. Container timings are noisy (+/-10% between windows); allocs/op is near-exact (portfolio pool jitter only) and part of the regression gate."

# bench-all runs every benchmark once: the paper tables, the ablations
# and the substrates.
bench-all:
	$(GO) test -run '^$$' -bench . -benchtime 1x .
