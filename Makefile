# Development targets for the ucp reproduction.

GO ?= go

# The hot-substrate microbenches tracked across PRs (see BENCH_pr3.json
# for the committed baseline and DESIGN.md for interpretation).
SUBSTRATE_BENCH = BenchmarkZDDReductions$$|BenchmarkSubgradient$$|BenchmarkSCGCore$$|BenchmarkSCGPortfolio$$

.PHONY: build test check bench-diff fuzz bench bench-all

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-merge gate: vet, the full suite under the race
# detector (which exercises the budget/cancellation paths, the restart
# portfolio and the pooled-scratch reuse with real concurrency), and
# the bench-diff regression gate on the substrate benches.
check:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(MAKE) bench-diff

# bench-diff reruns the substrate benches and fails on regression
# against the committed baseline: >25% ns/op growth or >0.5% allocs/op
# growth — the allowance absorbs the parallel portfolio's
# scheduler-dependent pool jitter (see cmd/benchfmt).
bench-diff:
	$(GO) test -run '^$$' -bench '$(SUBSTRATE_BENCH)' -benchtime 1x -count 5 . \
	| $(GO) run ./cmd/benchfmt -against BENCH_pr3.json

# fuzz runs every fuzz target for 30 seconds each (the robustness
# acceptance bar: no panic reachable through the public API).
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzReadProblem$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzParsePLA$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzReadORLibProblem$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzSolveParsedProblem$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzMinimizeParsedPLA$$' -fuzztime $(FUZZTIME) .

# bench measures the hot substrates (5 repetitions each, plus the
# portfolio under -cpu 1,2,4,8) and records the results in
# BENCH_pr3.json; commit the refreshed file when a change moves them.
bench:
	{ $(GO) test -run '^$$' -bench '$(SUBSTRATE_BENCH)' -benchtime 1x -count 5 . ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkSCGPortfolio$$' -benchtime 1x -count 3 -cpu 1,2,4,8 . ; } \
	| $(GO) run ./cmd/benchfmt -o BENCH_pr3.json \
	  -note "PR3: zero-allocation subgradient core (CSC mirror, incremental caches, count-derived greedy starts, scratch reuse). vs PR2 baseline mins: Subgradient 8.8ms -> ~5.8-7ms, SCGCore 247ms -> ~191ms, SCGPortfolio 1.85s -> ~1.47s. Container timings are noisy (+/-10% between windows); allocs/op is near-exact (portfolio pool jitter only) and part of the regression gate."

# bench-all runs every benchmark once: the paper tables, the ablations
# and the substrates.
bench-all:
	$(GO) test -run '^$$' -bench . -benchtime 1x .
