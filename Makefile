# Development targets for the ucp reproduction.

GO ?= go

# The hot-substrate microbenches tracked across PRs (see BENCH_pr2.json
# for the committed baseline and DESIGN.md for interpretation).
SUBSTRATE_BENCH = BenchmarkZDDReductions$$|BenchmarkSubgradient$$|BenchmarkSCGCore$$|BenchmarkSCGPortfolio$$

.PHONY: build test check fuzz bench bench-all

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-merge gate: vet, the full suite under the race
# detector (which exercises the budget/cancellation paths and the
# restart portfolio with real concurrency), and a one-iteration smoke
# run of the substrate benches so a broken bench never reaches main.
check:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -run '^$$' -bench '$(SUBSTRATE_BENCH)' -benchtime 1x . >/dev/null

# fuzz runs every fuzz target for 30 seconds each (the robustness
# acceptance bar: no panic reachable through the public API).
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzReadProblem$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzParsePLA$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzReadORLibProblem$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzSolveParsedProblem$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzMinimizeParsedPLA$$' -fuzztime $(FUZZTIME) .

# bench measures the hot substrates (5 repetitions each, plus the
# portfolio under -cpu 1,2,4,8) and records the results in
# BENCH_pr2.json; commit the refreshed file when a change moves them.
bench:
	{ $(GO) test -run '^$$' -bench '$(SUBSTRATE_BENCH)' -benchtime 1x -count 5 . ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkSCGPortfolio$$' -benchtime 1x -count 3 -cpu 1,2,4,8 . ; } \
	| $(GO) run ./cmd/benchfmt -o BENCH_pr2.json \
	  -note "vs PR1 baseline: ZDDReductions ~4.8-7.2ms, Subgradient ~23-25ms, SCGCore ~557-602ms. Portfolio cost/op must match across -cpu settings (determinism contract); wall-clock -cpu scaling needs >1 physical CPU."

# bench-all runs every benchmark once: the paper tables, the ablations
# and the substrates.
bench-all:
	$(GO) test -run '^$$' -bench . -benchtime 1x .
