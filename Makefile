# Development targets for the ucp reproduction.

GO ?= go

# The hot-substrate microbenches tracked across PRs (see BENCH_pr4.json
# for the committed baseline and DESIGN.md for interpretation).
SUBSTRATE_BENCH = BenchmarkZDDReductions$$|BenchmarkSubgradient$$|BenchmarkSCGCore$$|BenchmarkSCGPortfolio$$|BenchmarkReduceFixpoint$$|BenchmarkZDDGC$$

.PHONY: build test check bench-diff fuzz bench bench-all

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-merge gate: vet, the parallel-reduction differential
# tests under the race detector (fast fail on a determinism break in
# the sharded dominance passes), the full suite under -race (which also
# exercises the budget/cancellation paths, the restart portfolio and
# the pooled-scratch reuse with real concurrency), and the bench-diff
# regression gate on the substrate benches.
check:
	$(GO) vet ./...
	$(GO) test -race -run 'TestReduceWorkers|TestParShard' ./internal/matrix
	$(GO) test -race ./...
	$(MAKE) bench-diff

# bench-diff reruns the substrate benches and fails on regression
# against the committed baseline: >25% ns/op growth or >0.5% allocs/op
# growth — the allowance absorbs the parallel portfolio's
# scheduler-dependent pool jitter (see cmd/benchfmt).
bench-diff:
	$(GO) test -run '^$$' -bench '$(SUBSTRATE_BENCH)' -benchtime 1x -count 5 . \
	| $(GO) run ./cmd/benchfmt -against BENCH_pr4.json

# fuzz runs every fuzz target for 30 seconds each (the robustness
# acceptance bar: no panic reachable through the public API, and the
# signature prune exactly matches the exact subset test).
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzReadProblem$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzParsePLA$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzReadORLibProblem$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzSolveParsedProblem$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzMinimizeParsedPLA$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzSignatureSubset$$' -fuzztime $(FUZZTIME) ./internal/matrix

# bench measures the hot substrates (5 repetitions each, plus the
# portfolio and the sharded reduction fixpoint under -cpu 1,2,4,8) and
# records the results in BENCH_pr4.json; commit the refreshed file when
# a change moves them.
bench:
	{ $(GO) test -run '^$$' -bench '$(SUBSTRATE_BENCH)' -benchtime 1x -count 5 . ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkSCGPortfolio$$|BenchmarkReduceFixpoint$$' -benchtime 1x -count 3 -cpu 1,2,4,8 . ; } \
	| $(GO) run ./cmd/benchfmt -o BENCH_pr4.json \
	  -note "PR4: parallel signature-pruned reduction engine + ZDD mark-sweep GC. Sharded dominance passes (deterministic merge), 64-bit occupancy signatures pruning subset tests, epoch-stamped ZDD traversals, GC'd node store with live-set NodeCap. vs PR3 baseline mins: ZDDReductions and SCGCore ns/op should drop (signature pruning helps the 1-core container too); ReduceFixpoint/ZDDGC are new in this baseline. Container timings are noisy (+/-10% between windows); allocs/op is near-exact (portfolio pool jitter only) and part of the regression gate."

# bench-all runs every benchmark once: the paper tables, the ablations
# and the substrates.
bench-all:
	$(GO) test -run '^$$' -bench . -benchtime 1x .
