// Binate covering in action: a toy technology-mapping problem where
// gate choices exclude one another.  The unate machinery of the
// library cannot express the exclusions; the binate solver handles
// them directly.
//
//	go run ./examples/binate
package main

import (
	"fmt"

	"ucp"
)

func main() {
	// A netlist fragment needs three functions implemented.  The cell
	// library offers:
	//   0: big AOI cell     (covers f1 and f2, cost 3)
	//   1: small AND cell   (covers f1, cost 4)
	//   2: small OR cell    (covers f2, cost 4)
	//   3: XOR cell         (covers f3, cost 4)
	//   4: shared XOR+OR    (covers f2 and f3, cost 3)
	// Placement constraints: the big AOI cell and the shared cell
	// occupy the same site, so at most one of {0, 4} can be used.
	rows := [][]ucp.BinateLit{
		{{Col: 0}, {Col: 1}},                       // f1
		{{Col: 0}, {Col: 2}, {Col: 4}},             // f2
		{{Col: 3}, {Col: 4}},                       // f3
		{{Col: 0, Neg: true}, {Col: 4, Neg: true}}, // site conflict
	}
	costs := []int{3, 4, 4, 4, 3}
	p, err := ucp.NewBinateProblem(rows, 5, costs)
	if err != nil {
		panic(err)
	}
	res := ucp.SolveBinate(p, ucp.BinateOptions{})
	fmt.Printf("feasible: %v\n", res.Feasible)
	fmt.Printf("chosen cells: %v, total cost %d (optimal: %v)\n",
		res.Solution, res.Cost, res.Optimal)
	fmt.Printf("search: %d branch-and-bound nodes\n", res.Nodes)

	// Without the exclusion row the cheaper combination {0, 3} wins;
	// with it the solver must respect the site conflict.
	unate, _ := ucp.NewBinateProblem(rows[:3], 5, costs)
	free := ucp.SolveBinate(unate, ucp.BinateOptions{})
	fmt.Printf("\nwithout the site conflict: %v, cost %d\n", free.Solution, free.Cost)
}
