// Two-level minimisation end to end: parse a PLA, minimise it with the
// paper's ZDD_SCG pipeline, the exact solver and the Espresso-style
// baseline, and verify all three implement the same function.
//
//	go run ./examples/twolevel
package main

import (
	"fmt"
	"log"
	"strings"

	"ucp"
)

// A 4-input 2-output controller excerpt with don't cares, in Berkeley
// PLA format (type fd: output '1' = ON, '-' = don't care).
const controller = `
.i 4
.o 2
.ilb  start busy irq mode
.ob   grant ack
.p 8
1--0 10
-11- 11
0--1 01
11-- 10
--00 0-
0110 11
1-1- -1
-000 10
.e
`

func main() {
	f, err := ucp.ParsePLA(strings.NewReader(controller))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input: %d products over %d inputs, %d outputs\n\n",
		f.F.Len(), f.Space.Inputs(), f.Space.Outputs())

	// The paper's pipeline: primes → covering matrix → implicit and
	// explicit reductions → lagrangian heuristic.
	sg, err := ucp.MinimizeSCG(f, ucp.SCGOptions{})
	if err != nil {
		log.Fatal(err)
	}
	report(f, "ZDD_SCG", sg)

	ex, err := ucp.MinimizeExact(f, ucp.ExactOptions{})
	if err != nil {
		log.Fatal(err)
	}
	report(f, "exact", ex)

	report(f, "espresso", ucp.MinimizeEspresso(f, ucp.EspressoNormal))
	report(f, "espresso-strong", ucp.MinimizeEspresso(f, ucp.EspressoStrong))

	fmt.Println("\nminimised cover (ZDD_SCG):")
	fmt.Print(sg.Cover)
}

func report(f *ucp.PLA, name string, r *ucp.TwoLevelResult) {
	if !ucp.Equivalent(f, r.Cover) {
		log.Fatalf("%s produced a wrong cover", name)
	}
	note := ""
	if r.ProvedOptimal {
		note = " (proved optimal)"
	}
	fmt.Printf("%-16s %d products%s\n", name, r.Products, note)
}
