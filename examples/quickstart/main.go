// Quickstart: build a unate covering problem by hand and solve it with
// ZDD_SCG, the exact solver and the greedy baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ucp"
)

func main() {
	// A covering problem: five tasks (rows) and six workers (columns);
	// each worker can handle some tasks at a hiring cost.  We want the
	// cheapest crew covering every task.
	rows := [][]int{
		{0, 1},    // task 0: workers 0 or 1
		{1, 2, 3}, // task 1
		{0, 3},    // task 2
		{2, 4},    // task 3
		{3, 4, 5}, // task 4
	}
	costs := []int{3, 2, 4, 3, 2, 1}
	p, err := ucp.NewProblem(rows, 6, costs)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's lagrangian heuristic: it returns the cover, a lower
	// bound, and whether the bound certifies optimality.
	res := ucp.SolveSCG(p, ucp.SCGOptions{})
	fmt.Printf("ZDD_SCG : workers %v, cost %d", res.Solution, res.Cost)
	if res.ProvedOptimal {
		fmt.Printf(" — proved optimal (LB %.2f)", res.LB)
	}
	fmt.Println()

	// Cross-check with the exact branch-and-bound solver.
	exact := ucp.SolveExact(p, ucp.ExactOptions{})
	fmt.Printf("exact   : workers %v, cost %d (%d nodes)\n",
		exact.Solution, exact.Cost, exact.Nodes)

	// And with the classical greedy heuristic.
	g, err := ucp.SolveGreedy(p)
	if err != nil {
		panic(err)
	}
	fmt.Printf("greedy  : workers %v, cost %d\n", g, p.CostOf(g))

	// The four lower bounds of the paper's Proposition 1, in
	// increasing strength: MIS ≤ dual ascent ≤ lagrangian ≤ LP.
	b := ucp.LowerBounds(p)
	fmt.Printf("bounds  : MIS=%d  DA=%.2f  Lagr=%.2f  LP=%.2f\n",
		b.MIS, b.DualAscent, b.Lagrangian, b.LinearRelaxation)
}
