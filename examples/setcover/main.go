// Pure set covering at an operations-research scale: a randomly
// generated facility-location style instance far from any logic
// origin, showing that the covering core of the library stands on its
// own.  Compares greedy, ZDD_SCG and the exact solver, and shows the
// effect of the stochastic restarts.
//
//	go run ./examples/setcover
package main

import (
	"fmt"
	"math/rand"

	"ucp"
)

func main() {
	// 120 demand points (rows), 60 candidate facilities (columns);
	// each facility serves a random 8% of the points at a cost between
	// 1 and 5.
	const (
		points     = 120
		facilities = 60
		density    = 0.08
		seed       = 2026
	)
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]int, points)
	for i := range rows {
		for j := 0; j < facilities; j++ {
			if rng.Float64() < density {
				rows[i] = append(rows[i], j)
			}
		}
		if len(rows[i]) == 0 {
			rows[i] = append(rows[i], rng.Intn(facilities))
		}
	}
	costs := make([]int, facilities)
	for j := range costs {
		costs[j] = 1 + rng.Intn(5)
	}
	p, err := ucp.NewProblem(rows, facilities, costs)
	if err != nil {
		panic(err)
	}
	fmt.Printf("instance: %d demand points, %d facilities\n\n", points, facilities)

	g, err := ucp.SolveGreedy(p)
	if err != nil {
		panic(err)
	}
	fmt.Printf("greedy            cost %3d with %d facilities\n", p.CostOf(g), len(g))

	one := ucp.SolveSCG(p, ucp.SCGOptions{Seed: 1})
	fmt.Printf("ZDD_SCG (1 run)   cost %3d (LB %.2f, optimal=%v)\n", one.Cost, one.LB, one.ProvedOptimal)

	multi := ucp.SolveSCG(p, ucp.SCGOptions{Seed: 1, NumIter: 6})
	fmt.Printf("ZDD_SCG (6 runs)  cost %3d (LB %.2f, optimal=%v)\n", multi.Cost, multi.LB, multi.ProvedOptimal)

	exact := ucp.SolveExact(p, ucp.ExactOptions{InitialUB: multi.Cost})
	fmt.Printf("exact             cost %3d (%d nodes)\n", exact.Cost, exact.Nodes)

	b := ucp.LowerBounds(p)
	fmt.Printf("\nbound chain: MIS=%d ≤ DA=%.2f ≤ Lagr=%.2f ≤ LP=%.2f ≤ opt=%d\n",
		b.MIS, b.DualAscent, b.Lagrangian, b.LinearRelaxation, exact.Cost)
}
