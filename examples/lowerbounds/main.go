// A walk-through of the paper's Figure 1 and Proposition 1: the strict
// chain of lower bounds LB_MIS < LB_DA < LB_Lagr ≤ LB_LR on the
// reconstructed witness matrix, in both cost regimes, plus the
// penalty conditions in action.
//
//	go run ./examples/lowerbounds
package main

import (
	"fmt"
	"math"

	"ucp"
)

func main() {
	// The Figure 1 witness: 4 rows over 5 columns.
	rows := [][]int{
		{0, 3, 4}, // row 1
		{1, 4},    // row 2
		{2, 4},    // row 3
		{1, 2, 3}, // row 4
	}
	costs := []int{1, 1, 1, 2, 2}
	p, err := ucp.NewProblem(rows, 5, costs)
	if err != nil {
		panic(err)
	}

	fmt.Println("Figure 1 witness, costs (1,1,1,2,2):")
	b := ucp.LowerBounds(p)
	opt := ucp.SolveExact(p, ucp.ExactOptions{})
	fmt.Printf("  LB_MIS  = %d     (all rows pairwise intersect; cheapest cover of any row costs 1)\n", b.MIS)
	fmt.Printf("  LB_DA   = %.2f  (the dual solution m=(1,1,0,0) is feasible)\n", b.DualAscent)
	fmt.Printf("  LB_Lagr = %.2f  (subgradient ascent, between DA and LP)\n", b.Lagrangian)
	fmt.Printf("  LB_LR   = %.2f  -> %d by integrality\n", b.LinearRelaxation, int(math.Ceil(b.LinearRelaxation-1e-9)))
	fmt.Printf("  optimum = %d     (columns %v)\n\n", opt.Cost, opt.Solution)

	fmt.Println("same matrix, uniform costs (Proposition 1: MIS and DA coincide):")
	u, _ := ucp.NewProblem(rows, 5, nil)
	ub := ucp.LowerBounds(u)
	uopt := ucp.SolveExact(u, ucp.ExactOptions{})
	fmt.Printf("  LB_MIS = %d   LB_DA = %.2f   LB_LR = %.4f -> %d   optimum = %d\n\n",
		ub.MIS, ub.DualAscent, ub.LinearRelaxation,
		int(math.Ceil(ub.LinearRelaxation-1e-9)), uopt.Cost)

	// The heuristic itself proves optimality here: its bound reaches
	// ⌈2.5⌉ = 3 and its cover costs 3.
	res := ucp.SolveSCG(p, ucp.SCGOptions{})
	fmt.Printf("ZDD_SCG: cover %v, cost %d, LB %.2f, proved optimal: %v\n",
		res.Solution, res.Cost, res.LB, res.ProvedOptimal)
}
